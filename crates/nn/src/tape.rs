//! Eager tape-based reverse-mode autograd.
//!
//! Usage pattern per training step:
//!
//! ```
//! use pythia_nn::{ParamSet, Tape, Tensor, bce_with_logits};
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Tensor::full(2, 1, 0.5));
//!
//! let mut tape = Tape::new();
//! let vars = params.inject(&mut tape);
//! let x = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, -1.0]));
//! let logits = tape.matmul(x, vars[w.0]);
//! let loss = bce_with_logits(&mut tape, logits, Tensor::full(1, 1, 1.0), 1.0);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(vars[w.0]).shape(), (2, 1));
//! ```
//!
//! Values are computed eagerly when an op is recorded; `backward` walks the
//! tape in reverse accumulating gradients. Every op's gradient is verified
//! against central finite differences in this module's tests.

use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub usize);

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub usize);

/// A set of trainable parameters (plain tensors between steps).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Register a parameter.
    pub fn add(&mut self, name: &str, init: Tensor) -> ParamId {
        self.tensors.push(init);
        self.names.push(name.to_owned());
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar parameter count (for the paper's model-size reporting).
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Approximate model size in bytes (f32 storage).
    pub fn size_bytes(&self) -> usize {
        self.scalar_count() * 4
    }

    /// Read a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutate a parameter (optimizer updates).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Copy all parameters onto `tape` as leaves; `result[i]` is the var for
    /// `ParamId(i)`.
    pub fn inject(&self, tape: &mut Tape) -> Vec<Var> {
        self.tensors.iter().map(|t| tape.leaf(t.clone())).collect()
    }

    /// Iterate `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    /// `[m,n] + [1,n]` row broadcast.
    AddRow(Var, Var),
    Scale(Var, f32),
    /// Add a constant (no gradient flows to it) — positional encodings.
    AddConst(Var),
    Relu(Var),
    SoftmaxRows(Var),
    LayerNorm {
        x: Var,
        gain: Var,
        bias: Var,
    },
    /// Row-gather from an embedding table.
    Embed {
        table: Var,
        ids: Vec<usize>,
    },
    Transpose(Var),
    SliceCols {
        x: Var,
        start: usize,
        len: usize,
    },
    ConcatCols(Vec<Var>),
    /// Stack `[1,n]` rows into `[k,n]`.
    StackRows(Vec<Var>),
    /// Rows `[start, start+len)` of `x`.
    SliceRows {
        x: Var,
        start: usize,
        len: usize,
    },
    /// Concatenate along rows (blocks of arbitrary heights).
    ConcatRows(Vec<Var>),
    /// Gather arbitrary rows of a non-leaf var (backward scatter-adds).
    GatherRows {
        x: Var,
        idxs: Vec<usize>,
    },
    BceWithLogits {
        logits: Var,
        targets: Tensor,
        pos_weight: f32,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`.
    ///
    /// # Panics
    /// Panics if no gradient reached `var` (it did not influence the loss).
    pub fn get(&self, var: Var) -> &Tensor {
        self.grads[var.0].as_ref().unwrap_or_else(|| panic!("no gradient for {var:?}"))
    }

    /// Gradient if any reached `var`.
    pub fn try_get(&self, var: Var) -> Option<&Tensor> {
        self.grads[var.0].as_ref()
    }
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

const LN_EPS: f32 = 1e-5;

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `var`.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Record a leaf (input or parameter copy).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `[m,n] + [1,n]`: add `row` to every row of `a` (bias add).
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, n), "add_row shape mismatch");
        let rt = self.value(row).clone();
        let mut v = self.value(a).clone();
        let bias = rt.row(0);
        for r in 0..m {
            for (x, b) in v.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// `a * s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// `a + c` for a constant `c` (no gradient to `c`).
    pub fn add_const(&mut self, a: Var, c: &Tensor) -> Var {
        let v = self.value(a).add(c);
        self.push(v, Op::AddConst(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax (attention weights).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let (m, n) = x.shape();
        let mut v = Tensor::zeros(m, n);
        for r in 0..m {
            let row = x.row(r);
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let out = v.row_mut(r);
            let mut sum = 0.0;
            for (o, &xv) in out.iter_mut().zip(row) {
                let e = (xv - mx).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in out.iter_mut() {
                *o *= inv;
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization with learned gain/bias (`[1,n]` each).
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert_eq!(self.value(gain).shape(), (1, n));
        assert_eq!(self.value(bias).shape(), (1, n));
        let g = self.value(gain).clone();
        let b = self.value(bias).clone();
        let mut v = Tensor::zeros(m, n);
        for r in 0..m {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + LN_EPS).sqrt();
            for (((o, &xv), &gv), &bv) in
                v.row_mut(r).iter_mut().zip(row).zip(g.row(0)).zip(b.row(0))
            {
                *o = gv * (xv - mean) * inv + bv;
            }
        }
        self.push(v, Op::LayerNorm { x, gain, bias })
    }

    /// Gather rows `ids` from embedding `table` (`[vocab, dim]` → `[len, dim]`).
    pub fn embed(&mut self, table: Var, ids: &[usize]) -> Var {
        let t = self.value(table);
        let dim = t.cols();
        let mut v = Tensor::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows(), "embedding id {id} out of vocab {}", t.rows());
            v.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(v, Op::Embed { table, ids: ids.to_vec() })
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Columns `[start, start+len)` of `x` (attention head split).
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert!(start + len <= n, "slice_cols out of range");
        let mut v = Tensor::zeros(m, len);
        for r in 0..m {
            v.row_mut(r).copy_from_slice(&xv.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols { x, start, len })
    }

    /// Concatenate along columns (attention head merge).
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let m = self.value(xs[0]).rows();
        let total: usize = xs.iter().map(|&v| self.value(v).cols()).sum();
        let mut v = Tensor::zeros(m, total);
        let mut off = 0;
        for &x in xs {
            let xv = self.value(x);
            assert_eq!(xv.rows(), m, "concat_cols row mismatch");
            for r in 0..m {
                v.row_mut(r)[off..off + xv.cols()].copy_from_slice(xv.row(r));
            }
            off += xv.cols();
        }
        self.push(v, Op::ConcatCols(xs.to_vec()))
    }

    /// Rows `[start, start+len)` of `x` (per-sample views into a packed
    /// batch).
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert!(start + len <= m, "slice_rows out of range");
        let mut v = Tensor::zeros(len, n);
        for r in 0..len {
            v.row_mut(r).copy_from_slice(xv.row(start + r));
        }
        self.push(v, Op::SliceRows { x, start, len })
    }

    /// Concatenate blocks along rows (repacking per-sample attention outputs
    /// into the batch matrix).
    pub fn concat_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let n = self.value(xs[0]).cols();
        let total: usize = xs.iter().map(|&v| self.value(v).rows()).sum();
        let mut v = Tensor::zeros(total, n);
        let mut off = 0;
        for &x in xs {
            let xv = self.value(x);
            assert_eq!(xv.cols(), n, "concat_rows col mismatch");
            for r in 0..xv.rows() {
                v.row_mut(off + r).copy_from_slice(xv.row(r));
            }
            off += xv.rows();
        }
        self.push(v, Op::ConcatRows(xs.to_vec()))
    }

    /// Gather rows `idxs` from `x` (extracting each sequence's last-token
    /// representation from a packed batch). Duplicate indices are allowed.
    pub fn gather_rows(&mut self, x: Var, idxs: &[usize]) -> Var {
        let xv = self.value(x);
        let n = xv.cols();
        let mut v = Tensor::zeros(idxs.len(), n);
        for (r, &i) in idxs.iter().enumerate() {
            assert!(i < xv.rows(), "gather_rows index {i} out of range");
            v.row_mut(r).copy_from_slice(xv.row(i));
        }
        self.push(v, Op::GatherRows { x, idxs: idxs.to_vec() })
    }

    /// Stack `[1,n]` vars into `[k,n]` (batching per-sample query embeddings
    /// for the decoder).
    pub fn stack_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let n = self.value(xs[0]).cols();
        let mut v = Tensor::zeros(xs.len(), n);
        for (r, &x) in xs.iter().enumerate() {
            let xv = self.value(x);
            assert_eq!(xv.shape(), (1, n), "stack_rows expects [1,n] inputs");
            v.row_mut(r).copy_from_slice(xv.row(0));
        }
        self.push(v, Op::StackRows(xs.to_vec()))
    }

    /// Run reverse-mode accumulation from `loss` (seeded with ones).
    pub fn backward(&mut self, loss: Var) -> Gradients {
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        let (lr, lc) = self.nodes[loss.0].value.shape();
        grads[loss.0] = Some(Tensor::full(lr, lc, 1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.matmul(&self.nodes[b.0].value.transpose());
                    let gb = self.nodes[a.0].value.transpose().matmul(&g);
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    accum(&mut grads, a, g.clone());
                    accum(&mut grads, b, g);
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    accum(&mut grads, row, g.col_sums());
                    accum(&mut grads, a, g);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    accum(&mut grads, a, g.scale(s));
                }
                Op::AddConst(a) => {
                    let a = *a;
                    accum(&mut grads, a, g);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let mut gx = g;
                    for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(x.as_slice()) {
                        if xv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    accum(&mut grads, a, gx);
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let (m, n) = y.shape();
                    let mut gx = Tensor::zeros(m, n);
                    for r in 0..m {
                        let dot: f32 = (0..n).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..n {
                            gx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accum(&mut grads, a, gx);
                }
                Op::LayerNorm { x, gain, bias } => {
                    let (x, gain, bias) = (*x, *gain, *bias);
                    let xv = &self.nodes[x.0].value;
                    let gv = &self.nodes[gain.0].value;
                    let (m, n) = xv.shape();
                    let nf = n as f32;
                    let mut gx = Tensor::zeros(m, n);
                    let mut ggain = Tensor::zeros(1, n);
                    let mut gbias = Tensor::zeros(1, n);
                    for r in 0..m {
                        let row = xv.row(r);
                        let mean = row.iter().sum::<f32>() / nf;
                        let var =
                            row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / nf;
                        let inv = 1.0 / (var + LN_EPS).sqrt();
                        // xhat and dxhat for this row.
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_xhat = 0.0;
                        let mut xhat = vec![0.0f32; n];
                        let mut dxhat = vec![0.0f32; n];
                        for c in 0..n {
                            xhat[c] = (row[c] - mean) * inv;
                            dxhat[c] = g.get(r, c) * gv.get(0, c);
                            sum_dxhat += dxhat[c];
                            sum_dxhat_xhat += dxhat[c] * xhat[c];
                            ggain.set(0, c, ggain.get(0, c) + g.get(r, c) * xhat[c]);
                            gbias.set(0, c, gbias.get(0, c) + g.get(r, c));
                        }
                        for c in 0..n {
                            let v = inv
                                * (dxhat[c] - sum_dxhat / nf - xhat[c] * sum_dxhat_xhat / nf);
                            gx.set(r, c, v);
                        }
                    }
                    accum(&mut grads, x, gx);
                    accum(&mut grads, gain, ggain);
                    accum(&mut grads, bias, gbias);
                }
                Op::Embed { table, ids } => {
                    let table = *table;
                    let ids = ids.clone();
                    let dim = self.nodes[table.0].value.cols();
                    let vocab = self.nodes[table.0].value.rows();
                    let mut gt = Tensor::zeros(vocab, dim);
                    for (r, id) in ids.iter().enumerate() {
                        let grow = g.row(r).to_vec();
                        for (c, gvv) in grow.iter().enumerate() {
                            let cur = gt.get(*id, c);
                            gt.set(*id, c, cur + gvv);
                        }
                    }
                    accum(&mut grads, table, gt);
                }
                Op::Transpose(a) => {
                    let a = *a;
                    accum(&mut grads, a, g.transpose());
                }
                Op::SliceCols { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = Tensor::zeros(m, n);
                    for r in 0..m {
                        gx.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
                    }
                    accum(&mut grads, x, gx);
                }
                Op::ConcatCols(xs) => {
                    let xs = xs.clone();
                    let mut off = 0;
                    for xvar in xs {
                        let (m, w) = self.nodes[xvar.0].value.shape();
                        let mut gx = Tensor::zeros(m, w);
                        for r in 0..m {
                            gx.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                        }
                        off += w;
                        accum(&mut grads, xvar, gx);
                    }
                }
                Op::SliceRows { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = Tensor::zeros(m, n);
                    for r in 0..len {
                        gx.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    accum(&mut grads, x, gx);
                }
                Op::ConcatRows(xs) => {
                    let xs = xs.clone();
                    let mut off = 0;
                    for xvar in xs {
                        let (h, n) = self.nodes[xvar.0].value.shape();
                        let mut gx = Tensor::zeros(h, n);
                        for r in 0..h {
                            gx.row_mut(r).copy_from_slice(g.row(off + r));
                        }
                        off += h;
                        accum(&mut grads, xvar, gx);
                    }
                }
                Op::GatherRows { x, idxs } => {
                    let x = *x;
                    let idxs = idxs.clone();
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = Tensor::zeros(m, n);
                    for (r, &i) in idxs.iter().enumerate() {
                        for c in 0..n {
                            let cur = gx.get(i, c);
                            gx.set(i, c, cur + g.get(r, c));
                        }
                    }
                    accum(&mut grads, x, gx);
                }
                Op::StackRows(xs) => {
                    let xs = xs.clone();
                    for (r, xvar) in xs.into_iter().enumerate() {
                        let n = g.cols();
                        let gx = Tensor::from_vec(1, n, g.row(r).to_vec());
                        accum(&mut grads, xvar, gx);
                    }
                }
                Op::BceWithLogits { logits, targets, pos_weight } => {
                    let (logits, p) = (*logits, *pos_weight);
                    let targets = targets.clone();
                    let z = &self.nodes[logits.0].value;
                    let (m, n) = z.shape();
                    let scale = g.get(0, 0) / (m * n) as f32;
                    let mut gz = Tensor::zeros(m, n);
                    for ((o, &zv), &t) in
                        gz.as_mut_slice().iter_mut().zip(z.as_slice()).zip(targets.as_slice())
                    {
                        let s = sigmoid(zv);
                        // d/dz of  t*p*softplus(-z) + (1-t)*(z + softplus(-z))
                        *o = (t * p * (s - 1.0) + (1.0 - t) * s) * scale;
                    }
                    accum(&mut grads, logits, gz);
                }
            }
            grads[i] = None; // interior grad no longer needed
        }
        // Restore leaf grads taken above (accum writes them back as we go,
        // but the `take` at loop start cleared visited leaves). Rebuild:
        // leaves are handled by the `continue` branch which re-inserts.
        Gradients { grads }
    }
}

fn accum(grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
    match &mut grads[var.0] {
        Some(g) => g.add_scaled(&delta, 1.0),
        slot @ None => *slot = Some(delta),
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[inline]
fn softplus(z: f32) -> f32 {
    z.max(0.0) + (-z.abs()).exp().ln_1p()
}

/// Numerically stable multi-label binary cross-entropy with logits, averaged
/// over all elements — PyTorch's `BCEWithLogitsLoss` with an optional
/// `pos_weight` (useful here because almost all page labels are 0).
/// Returns a `[1,1]` scalar var.
pub fn bce_with_logits(tape: &mut Tape, logits: Var, targets: Tensor, pos_weight: f32) -> Var {
    let z = tape.value(logits);
    assert_eq!(z.shape(), targets.shape(), "bce shape mismatch");
    let (m, n) = z.shape();
    let mut total = 0.0f64;
    for (&zv, &t) in z.as_slice().iter().zip(targets.as_slice()) {
        let l = t * pos_weight * softplus(-zv) + (1.0 - t) * (zv + softplus(-zv));
        total += l as f64;
    }
    let v = Tensor::full(1, 1, (total / (m * n) as f64) as f32);
    tape.push_bce(v, logits, targets, pos_weight)
}

impl Tape {
    fn push_bce(&mut self, value: Tensor, logits: Var, targets: Tensor, pos_weight: f32) -> Var {
        self.push(value, Op::BceWithLogits { logits, targets, pos_weight })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check: `build` must construct the full graph
    /// from a leaf injected with tensor `x` and return the scalar loss var.
    fn gradcheck(x0: Tensor, build: impl Fn(&mut Tape, Var) -> Var) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        assert_eq!(tape.value(loss).shape(), (1, 1), "loss must be scalar");
        let grads = tape.backward(loss);
        let analytic = grads.get(x).clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        let (m, n) = x0.shape();
        for r in 0..m {
            for c in 0..n {
                let mut plus = x0.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = x0.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let f = |t: Tensor| {
                    let mut tape = Tape::new();
                    let x = tape.leaf(t);
                    let loss = build(&mut tape, x);
                    tape.value(loss).get(0, 0)
                };
                let num = (f(plus) - f(minus)) / (2.0 * eps);
                let ana = analytic.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs().max(ana.abs())),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// Reduce any matrix to a scalar by BCE against fixed targets — gives a
    /// smooth scalarization for gradcheck.
    fn to_scalar(tape: &mut Tape, v: Var) -> Var {
        let (m, n) = tape.value(v).shape();
        let targets = Tensor::from_fn(m, n, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.0 });
        bce_with_logits(tape, v, targets, 1.0)
    }

    fn test_input(m: usize, n: usize) -> Tensor {
        Tensor::from_fn(m, n, |r, c| ((r * n + c) as f32) * 0.31 - 0.8)
    }

    #[test]
    fn grad_bce_direct() {
        gradcheck(test_input(2, 3), |tape, x| to_scalar(tape, x));
    }

    #[test]
    fn grad_bce_pos_weight() {
        gradcheck(test_input(2, 3), |tape, x| {
            let t = Tensor::from_fn(2, 3, |r, _| if r == 0 { 1.0 } else { 0.0 });
            bce_with_logits(tape, x, t, 3.5)
        });
    }

    #[test]
    fn grad_matmul() {
        gradcheck(test_input(2, 3), |tape, x| {
            let w = tape.leaf(Tensor::from_fn(3, 2, |r, c| 0.2 * (r as f32) - 0.1 * c as f32));
            let y = tape.matmul(x, w);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_matmul_right_operand() {
        // Check gradient flowing to the right operand of matmul.
        gradcheck(test_input(3, 2), |tape, x| {
            let a = tape.leaf(Tensor::from_fn(2, 3, |r, c| 0.3 * (r + c) as f32 - 0.2));
            let y = tape.matmul(a, x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_add_and_scale() {
        gradcheck(test_input(2, 2), |tape, x| {
            let y = tape.scale(x, 1.7);
            let z = tape.add(y, x);
            to_scalar(tape, z)
        });
    }

    #[test]
    fn grad_add_row() {
        gradcheck(test_input(1, 4), |tape, b| {
            let a = tape.leaf(test_input(3, 4));
            let y = tape.add_row(a, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_relu() {
        gradcheck(test_input(2, 4), |tape, x| {
            let y = tape.relu(x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_softmax() {
        gradcheck(test_input(2, 4), |tape, x| {
            let y = tape.softmax_rows(x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_layer_norm_input() {
        gradcheck(test_input(2, 4), |tape, x| {
            let g = tape.leaf(Tensor::from_fn(1, 4, |_, c| 1.0 + 0.1 * c as f32));
            let b = tape.leaf(Tensor::from_fn(1, 4, |_, c| 0.05 * c as f32));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_layer_norm_gain_bias() {
        gradcheck(test_input(1, 4), |tape, g| {
            let x = tape.leaf(test_input(3, 4));
            let b = tape.leaf(Tensor::zeros(1, 4));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
        gradcheck(Tensor::zeros(1, 4), |tape, b| {
            let x = tape.leaf(test_input(3, 4));
            let g = tape.leaf(Tensor::full(1, 4, 1.0));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_embedding() {
        gradcheck(test_input(5, 3), |tape, table| {
            let y = tape.embed(table, &[0, 2, 2, 4]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_transpose_slice_concat() {
        gradcheck(test_input(3, 4), |tape, x| {
            let t = tape.transpose(x); // [4,3]
            let s1 = tape.slice_cols(t, 0, 2); // [4,2]
            let s2 = tape.slice_cols(t, 1, 2); // overlapping slice
            let y = tape.concat_cols(&[s1, s2]); // [4,4]
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_slice_and_concat_rows() {
        gradcheck(test_input(4, 3), |tape, x| {
            let top = tape.slice_rows(x, 0, 2);
            let bottom = tape.slice_rows(x, 1, 3); // overlapping
            let y = tape.concat_rows(&[bottom, top]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_gather_rows_with_duplicates() {
        gradcheck(test_input(4, 3), |tape, x| {
            let y = tape.gather_rows(x, &[3, 0, 3, 2]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_stack_rows() {
        gradcheck(test_input(1, 3), |tape, x| {
            let x2 = tape.scale(x, 2.0);
            let y = tape.stack_rows(&[x, x2, x]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_attention_like_composite() {
        // A miniature attention head end-to-end.
        gradcheck(test_input(3, 4), |tape, x| {
            let wq = tape.leaf(Tensor::from_fn(4, 2, |r, c| 0.1 * (r as f32) - 0.15 * c as f32));
            let wk = tape.leaf(Tensor::from_fn(4, 2, |r, c| 0.12 * (c as f32) - 0.05 * r as f32));
            let wv = tape.leaf(Tensor::from_fn(4, 2, |r, c| 0.2 - 0.03 * (r + c) as f32));
            let q = tape.matmul(x, wq);
            let k = tape.matmul(x, wk);
            let v = tape.matmul(x, wv);
            let kt = tape.transpose(k);
            let scores = tape.matmul(q, kt);
            let scaled = tape.scale(scores, 1.0 / (2.0f32).sqrt());
            let attn = tape.softmax_rows(scaled);
            let out = tape.matmul(attn, v);
            to_scalar(tape, out)
        });
    }

    #[test]
    fn grad_add_const_passthrough() {
        gradcheck(test_input(2, 3), |tape, x| {
            let c = Tensor::from_fn(2, 3, |r, c| (r + c) as f32);
            let y = tape.add_const(x, &c);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn paramset_bookkeeping() {
        let mut p = ParamSet::new();
        let a = p.add("a", Tensor::zeros(2, 3));
        let b = p.add("b", Tensor::zeros(1, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 10);
        assert_eq!(p.size_bytes(), 40);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.get(b).shape(), (1, 4));
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        assert_eq!(vars.len(), 2);
        assert_eq!(tape.value(vars[0]).shape(), (2, 3));
    }

    #[test]
    fn no_grad_for_unused_leaf() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(1, 1, 1.0));
        let unused = tape.leaf(Tensor::full(1, 1, 1.0));
        let loss = bce_with_logits(&mut tape, x, Tensor::full(1, 1, 1.0), 1.0);
        let grads = tape.backward(loss);
        assert!(grads.try_get(unused).is_none());
        assert!(grads.try_get(x).is_some());
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // y = x + x  ->  dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(1, 1, 0.3));
        let y = tape.add(x, x);
        let loss = bce_with_logits(&mut tape, y, Tensor::full(1, 1, 1.0), 1.0);
        let grads = tape.backward(loss);
        let gx = grads.get(x).get(0, 0);
        // dL/dy = sigmoid(0.6) - 1; dL/dx = 2 * that.
        let expected = 2.0 * (1.0 / (1.0 + (-0.6f32).exp()) - 1.0);
        assert!((gx - expected).abs() < 1e-5, "{gx} vs {expected}");
    }
}
