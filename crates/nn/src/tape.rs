//! Eager tape-based reverse-mode autograd.
//!
//! Usage pattern per training step:
//!
//! ```
//! use pythia_nn::{ParamSet, Tape, Tensor, bce_with_logits};
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Tensor::full(2, 1, 0.5));
//!
//! let mut tape = Tape::new();
//! let vars = params.inject(&mut tape);
//! let x = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, -1.0]));
//! let logits = tape.matmul(x, vars[w.0]);
//! let loss = bce_with_logits(&mut tape, logits, Tensor::full(1, 1, 1.0), 1.0);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(vars[w.0]).shape(), (2, 1));
//! ```
//!
//! Values are computed eagerly when an op is recorded; `backward` walks the
//! tape in reverse accumulating gradients. Every op's gradient is verified
//! against central finite differences in this module's tests.

use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub usize);

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub usize);

/// A set of trainable parameters (plain tensors between steps).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Register a parameter.
    pub fn add(&mut self, name: &str, init: Tensor) -> ParamId {
        self.tensors.push(init);
        self.names.push(name.to_owned());
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar parameter count (for the paper's model-size reporting).
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Approximate model size in bytes (f32 storage).
    pub fn size_bytes(&self) -> usize {
        self.scalar_count() * 4
    }

    /// Read a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutate a parameter (optimizer updates).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Copy all parameters onto `tape` as leaves; `result[i]` is the var for
    /// `ParamId(i)`.
    pub fn inject(&self, tape: &mut Tape) -> Vec<Var> {
        self.tensors.iter().map(|t| tape.leaf_copy(t)).collect()
    }

    /// Iterate `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (ParamId(i), t))
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    /// Fused `x·w + bias` (`[m,k]×[k,n] + [1,n]`): one kernel forward,
    /// transpose-free backward.
    Linear(Var, Var, Var),
    Add(Var, Var),
    /// `[m,n] + [1,n]` row broadcast.
    AddRow(Var, Var),
    Scale(Var, f32),
    /// Add a constant (no gradient flows to it) — positional encodings.
    AddConst(Var),
    Relu(Var),
    SoftmaxRows(Var),
    LayerNorm {
        x: Var,
        gain: Var,
        bias: Var,
    },
    /// Row-gather from an embedding table.
    Embed {
        table: Var,
        ids: Vec<usize>,
    },
    Transpose(Var),
    SliceCols {
        x: Var,
        start: usize,
        len: usize,
    },
    ConcatCols(Vec<Var>),
    /// Stack `[1,n]` rows into `[k,n]`.
    StackRows(Vec<Var>),
    /// Rows `[start, start+len)` of `x`.
    SliceRows {
        x: Var,
        start: usize,
        len: usize,
    },
    /// Concatenate along rows (blocks of arbitrary heights).
    ConcatRows(Vec<Var>),
    /// Gather arbitrary rows of a non-leaf var (backward scatter-adds).
    GatherRows {
        x: Var,
        idxs: Vec<usize>,
    },
    BceWithLogits {
        logits: Var,
        targets: Tensor,
        pos_weight: f32,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`.
    ///
    /// # Panics
    /// Panics if no gradient reached `var` (it did not influence the loss).
    pub fn get(&self, var: Var) -> &Tensor {
        self.grads[var.0]
            .as_ref()
            .unwrap_or_else(|| panic!("no gradient for {var:?}"))
    }

    /// Gradient if any reached `var`.
    pub fn try_get(&self, var: Var) -> Option<&Tensor> {
        self.grads[var.0].as_ref()
    }
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Recycled `f32` buffers. [`Tape::reset`] and [`Tape::absorb`] return
    /// node/gradient storage here so steady-state training (same graph shape
    /// every minibatch) reuses allocations instead of hitting the allocator
    /// per op.
    pool: Vec<Vec<f32>>,
}

const LN_EPS: f32 = 1e-5;

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `var`.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Record a leaf (input or parameter copy).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Record a leaf holding a copy of `t`, reusing a pooled buffer.
    pub fn leaf_copy(&mut self, t: &Tensor) -> Var {
        let (r, c) = t.shape();
        let v = pooled_from_slice(&mut self.pool, r, c, t.as_slice());
        self.push(v, Op::Leaf)
    }

    /// Clear all recorded nodes, recycling their buffers. The tape is then
    /// ready for the next minibatch's graph without reallocating.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.push(node.value.into_data());
            if let Op::BceWithLogits { targets, .. } = node.op {
                self.pool.push(targets.into_data());
            }
        }
    }

    /// Recycle gradient buffers into the pool once the optimizer is done
    /// with them.
    pub fn absorb(&mut self, grads: Gradients) {
        for g in grads.grads.into_iter().flatten() {
            self.pool.push(g.into_data());
        }
    }

    /// `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Fused `x·w + bias` where `bias` is `[1,n]`, broadcast over rows: the
    /// whole affine layer as one tape node. Forward runs the dispatched
    /// [`Tensor::matmul_bias`] kernel (bias added after the matmul is fully
    /// accumulated, so rounding order matches `matmul` + `add_row`); backward
    /// uses the transpose-free kernels [`Tensor::matmul_a_bt`] /
    /// [`Tensor::matmul_at_b`].
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        assert_eq!(
            self.nodes[x.0].value.cols(),
            self.nodes[w.0].value.rows(),
            "linear inner-dim mismatch"
        );
        let v = self.nodes[x.0]
            .value
            .matmul_bias(&self.nodes[w.0].value, &self.nodes[bias.0].value);
        self.push(v, Op::Linear(x, w, bias))
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `[m,n] + [1,n]`: add `row` to every row of `a` (bias add).
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (m, n) = self.nodes[a.0].value.shape();
        assert_eq!(
            self.nodes[row.0].value.shape(),
            (1, n),
            "add_row shape mismatch"
        );
        let mut v = pooled_from_slice(&mut self.pool, m, n, self.nodes[a.0].value.as_slice());
        let rt = &self.nodes[row.0].value;
        for r in 0..m {
            for (x, b) in v.row_mut(r).iter_mut().zip(rt.row(0)) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// `a * s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// `a + c` for a constant `c` (no gradient to `c`).
    pub fn add_const(&mut self, a: Var, c: &Tensor) -> Var {
        let v = self.value(a).add(c);
        self.push(v, Op::AddConst(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let (m, n) = self.nodes[a.0].value.shape();
        let mut v = pooled_from_slice(&mut self.pool, m, n, self.nodes[a.0].value.as_slice());
        for x in v.as_mut_slice() {
            *x = x.max(0.0);
        }
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax (attention weights).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let (m, n) = self.nodes[a.0].value.shape();
        let mut v = pooled_zeros(&mut self.pool, m, n);
        let x = &self.nodes[a.0].value;
        for r in 0..m {
            let row = x.row(r);
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let out = v.row_mut(r);
            let mut sum = 0.0;
            for (o, &xv) in out.iter_mut().zip(row) {
                let e = (xv - mx).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in out.iter_mut() {
                *o *= inv;
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization with learned gain/bias (`[1,n]` each).
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        let (m, n) = self.nodes[x.0].value.shape();
        assert_eq!(self.nodes[gain.0].value.shape(), (1, n));
        assert_eq!(self.nodes[bias.0].value.shape(), (1, n));
        let mut v = pooled_zeros(&mut self.pool, m, n);
        let xv = &self.nodes[x.0].value;
        let g = &self.nodes[gain.0].value;
        let b = &self.nodes[bias.0].value;
        for r in 0..m {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + LN_EPS).sqrt();
            for (((o, &xv), &gv), &bv) in
                v.row_mut(r).iter_mut().zip(row).zip(g.row(0)).zip(b.row(0))
            {
                *o = gv * (xv - mean) * inv + bv;
            }
        }
        self.push(v, Op::LayerNorm { x, gain, bias })
    }

    /// Gather rows `ids` from embedding `table` (`[vocab, dim]` → `[len, dim]`).
    pub fn embed(&mut self, table: Var, ids: &[usize]) -> Var {
        let dim = self.nodes[table.0].value.cols();
        let mut v = pooled_zeros(&mut self.pool, ids.len(), dim);
        let t = &self.nodes[table.0].value;
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows(), "embedding id {id} out of vocab {}", t.rows());
            v.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(
            v,
            Op::Embed {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Columns `[start, start+len)` of `x` (attention head split).
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let (m, n) = self.nodes[x.0].value.shape();
        assert!(start + len <= n, "slice_cols out of range");
        let mut v = pooled_zeros(&mut self.pool, m, len);
        let xv = &self.nodes[x.0].value;
        for r in 0..m {
            v.row_mut(r).copy_from_slice(&xv.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols { x, start, len })
    }

    /// Concatenate along columns (attention head merge).
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let m = self.nodes[xs[0].0].value.rows();
        let total: usize = xs.iter().map(|&v| self.nodes[v.0].value.cols()).sum();
        let mut v = pooled_zeros(&mut self.pool, m, total);
        let mut off = 0;
        for &x in xs {
            let xv = &self.nodes[x.0].value;
            assert_eq!(xv.rows(), m, "concat_cols row mismatch");
            for r in 0..m {
                v.row_mut(r)[off..off + xv.cols()].copy_from_slice(xv.row(r));
            }
            off += xv.cols();
        }
        self.push(v, Op::ConcatCols(xs.to_vec()))
    }

    /// Rows `[start, start+len)` of `x` (per-sample views into a packed
    /// batch).
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let (m, n) = self.nodes[x.0].value.shape();
        assert!(start + len <= m, "slice_rows out of range");
        let mut v = pooled_zeros(&mut self.pool, len, n);
        let xv = &self.nodes[x.0].value;
        for r in 0..len {
            v.row_mut(r).copy_from_slice(xv.row(start + r));
        }
        self.push(v, Op::SliceRows { x, start, len })
    }

    /// Concatenate blocks along rows (repacking per-sample attention outputs
    /// into the batch matrix).
    pub fn concat_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let n = self.nodes[xs[0].0].value.cols();
        let total: usize = xs.iter().map(|&v| self.nodes[v.0].value.rows()).sum();
        let mut v = pooled_zeros(&mut self.pool, total, n);
        let mut off = 0;
        for &x in xs {
            let xv = &self.nodes[x.0].value;
            assert_eq!(xv.cols(), n, "concat_rows col mismatch");
            for r in 0..xv.rows() {
                v.row_mut(off + r).copy_from_slice(xv.row(r));
            }
            off += xv.rows();
        }
        self.push(v, Op::ConcatRows(xs.to_vec()))
    }

    /// Gather rows `idxs` from `x` (extracting each sequence's last-token
    /// representation from a packed batch). Duplicate indices are allowed.
    pub fn gather_rows(&mut self, x: Var, idxs: &[usize]) -> Var {
        let n = self.nodes[x.0].value.cols();
        let mut v = pooled_zeros(&mut self.pool, idxs.len(), n);
        let xv = &self.nodes[x.0].value;
        for (r, &i) in idxs.iter().enumerate() {
            assert!(i < xv.rows(), "gather_rows index {i} out of range");
            v.row_mut(r).copy_from_slice(xv.row(i));
        }
        self.push(
            v,
            Op::GatherRows {
                x,
                idxs: idxs.to_vec(),
            },
        )
    }

    /// Stack `[1,n]` vars into `[k,n]` (batching per-sample query embeddings
    /// for the decoder).
    pub fn stack_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let n = self.nodes[xs[0].0].value.cols();
        let mut v = pooled_zeros(&mut self.pool, xs.len(), n);
        for (r, &x) in xs.iter().enumerate() {
            let xv = &self.nodes[x.0].value;
            assert_eq!(xv.shape(), (1, n), "stack_rows expects [1,n] inputs");
            v.row_mut(r).copy_from_slice(xv.row(0));
        }
        self.push(v, Op::StackRows(xs.to_vec()))
    }

    /// Run reverse-mode accumulation from `loss` (seeded with ones).
    pub fn backward(&mut self, loss: Var) -> Gradients {
        // Gradient work buffers come from (and interior grads return to) the
        // tape's pool; `take` sidesteps the simultaneous `&self.nodes` borrow.
        let mut pool = std::mem::take(&mut self.pool);
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        let (lr, lc) = self.nodes[loss.0].value.shape();
        let mut seed = pooled_zeros(&mut pool, lr, lc);
        seed.as_mut_slice().fill(1.0);
        grads[loss.0] = Some(seed);

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.matmul_a_bt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_at_b(&g);
                    accum(&mut grads, a, ga);
                    accum(&mut grads, b, gb);
                    pool.push(g.into_data());
                }
                Op::Linear(x, w, b) => {
                    let (x, w, b) = (*x, *w, *b);
                    let gx = g.matmul_a_bt(&self.nodes[w.0].value);
                    let gw = self.nodes[x.0].value.matmul_at_b(&g);
                    let gb = g.col_sums();
                    accum(&mut grads, x, gx);
                    accum(&mut grads, w, gw);
                    accum(&mut grads, b, gb);
                    pool.push(g.into_data());
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    accum(&mut grads, a, g.clone());
                    accum(&mut grads, b, g);
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    accum(&mut grads, row, g.col_sums());
                    accum(&mut grads, a, g);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    accum(&mut grads, a, g.scale(s));
                    pool.push(g.into_data());
                }
                Op::AddConst(a) => {
                    let a = *a;
                    accum(&mut grads, a, g);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let mut gx = g;
                    for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(x.as_slice()) {
                        if xv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    accum(&mut grads, a, gx);
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let (m, n) = y.shape();
                    let mut gx = pooled_zeros(&mut pool, m, n);
                    for r in 0..m {
                        let dot: f32 = (0..n).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..n {
                            gx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accum(&mut grads, a, gx);
                    pool.push(g.into_data());
                }
                Op::LayerNorm { x, gain, bias } => {
                    let (x, gain, bias) = (*x, *gain, *bias);
                    let xv = &self.nodes[x.0].value;
                    let gv = &self.nodes[gain.0].value;
                    let (m, n) = xv.shape();
                    let nf = n as f32;
                    let mut gx = pooled_zeros(&mut pool, m, n);
                    let mut ggain = pooled_zeros(&mut pool, 1, n);
                    let mut gbias = pooled_zeros(&mut pool, 1, n);
                    for r in 0..m {
                        let row = xv.row(r);
                        let mean = row.iter().sum::<f32>() / nf;
                        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / nf;
                        let inv = 1.0 / (var + LN_EPS).sqrt();
                        // xhat and dxhat for this row.
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_xhat = 0.0;
                        let mut xhat = vec![0.0f32; n];
                        let mut dxhat = vec![0.0f32; n];
                        for c in 0..n {
                            xhat[c] = (row[c] - mean) * inv;
                            dxhat[c] = g.get(r, c) * gv.get(0, c);
                            sum_dxhat += dxhat[c];
                            sum_dxhat_xhat += dxhat[c] * xhat[c];
                            ggain.set(0, c, ggain.get(0, c) + g.get(r, c) * xhat[c]);
                            gbias.set(0, c, gbias.get(0, c) + g.get(r, c));
                        }
                        for c in 0..n {
                            let v =
                                inv * (dxhat[c] - sum_dxhat / nf - xhat[c] * sum_dxhat_xhat / nf);
                            gx.set(r, c, v);
                        }
                    }
                    accum(&mut grads, x, gx);
                    accum(&mut grads, gain, ggain);
                    accum(&mut grads, bias, gbias);
                    pool.push(g.into_data());
                }
                Op::Embed { table, ids } => {
                    let table = *table;
                    let ids = ids.clone();
                    let dim = self.nodes[table.0].value.cols();
                    let vocab = self.nodes[table.0].value.rows();
                    let mut gt = pooled_zeros(&mut pool, vocab, dim);
                    for (r, id) in ids.iter().enumerate() {
                        let grow = g.row(r);
                        for (c, gvv) in grow.iter().enumerate() {
                            let cur = gt.get(*id, c);
                            gt.set(*id, c, cur + gvv);
                        }
                    }
                    accum(&mut grads, table, gt);
                    pool.push(g.into_data());
                }
                Op::Transpose(a) => {
                    let a = *a;
                    accum(&mut grads, a, g.transpose());
                    pool.push(g.into_data());
                }
                Op::SliceCols { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = pooled_zeros(&mut pool, m, n);
                    for r in 0..m {
                        gx.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
                    }
                    accum(&mut grads, x, gx);
                    pool.push(g.into_data());
                }
                Op::ConcatCols(xs) => {
                    let xs = xs.clone();
                    let mut off = 0;
                    for xvar in xs {
                        let (m, w) = self.nodes[xvar.0].value.shape();
                        let mut gx = pooled_zeros(&mut pool, m, w);
                        for r in 0..m {
                            gx.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                        }
                        off += w;
                        accum(&mut grads, xvar, gx);
                    }
                    pool.push(g.into_data());
                }
                Op::SliceRows { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = pooled_zeros(&mut pool, m, n);
                    for r in 0..len {
                        gx.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    accum(&mut grads, x, gx);
                    pool.push(g.into_data());
                }
                Op::ConcatRows(xs) => {
                    let xs = xs.clone();
                    let mut off = 0;
                    for xvar in xs {
                        let (h, n) = self.nodes[xvar.0].value.shape();
                        let mut gx = pooled_zeros(&mut pool, h, n);
                        for r in 0..h {
                            gx.row_mut(r).copy_from_slice(g.row(off + r));
                        }
                        off += h;
                        accum(&mut grads, xvar, gx);
                    }
                    pool.push(g.into_data());
                }
                Op::GatherRows { x, idxs } => {
                    let x = *x;
                    let idxs = idxs.clone();
                    let (m, n) = self.nodes[x.0].value.shape();
                    let mut gx = pooled_zeros(&mut pool, m, n);
                    for (r, &i) in idxs.iter().enumerate() {
                        for c in 0..n {
                            let cur = gx.get(i, c);
                            gx.set(i, c, cur + g.get(r, c));
                        }
                    }
                    accum(&mut grads, x, gx);
                    pool.push(g.into_data());
                }
                Op::StackRows(xs) => {
                    let xs = xs.clone();
                    for (r, xvar) in xs.into_iter().enumerate() {
                        let n = g.cols();
                        let gx = pooled_from_slice(&mut pool, 1, n, g.row(r));
                        accum(&mut grads, xvar, gx);
                    }
                    pool.push(g.into_data());
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    pos_weight,
                } => {
                    let (logits, p) = (*logits, *pos_weight);
                    let targets = targets.clone();
                    let z = &self.nodes[logits.0].value;
                    let (m, n) = z.shape();
                    let scale = g.get(0, 0) / (m * n) as f32;
                    let mut gz = pooled_zeros(&mut pool, m, n);
                    for ((o, &zv), &t) in gz
                        .as_mut_slice()
                        .iter_mut()
                        .zip(z.as_slice())
                        .zip(targets.as_slice())
                    {
                        let s = sigmoid(zv);
                        // d/dz of  t*p*softplus(-z) + (1-t)*(z + softplus(-z))
                        *o = (t * p * (s - 1.0) + (1.0 - t) * s) * scale;
                    }
                    accum(&mut grads, logits, gz);
                    pool.push(g.into_data());
                }
            }
            grads[i] = None; // interior grad no longer needed
        }
        self.pool = pool;
        // Leaf grads survive: the `continue` branch re-inserts them after the
        // `take` at loop start.
        Gradients { grads }
    }
}

fn accum(grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
    match &mut grads[var.0] {
        Some(g) => g.add_scaled(&delta, 1.0),
        slot @ None => *slot = Some(delta),
    }
}

/// Pop a recycled buffer (or allocate one) and shape it into a zeroed tensor.
fn pooled_zeros(pool: &mut Vec<Vec<f32>>, rows: usize, cols: usize) -> Tensor {
    let mut data = pool.pop().unwrap_or_default();
    data.clear();
    data.resize(rows * cols, 0.0);
    Tensor::from_vec(rows, cols, data)
}

/// Pop a recycled buffer and fill it with a copy of `src`.
fn pooled_from_slice(pool: &mut Vec<Vec<f32>>, rows: usize, cols: usize, src: &[f32]) -> Tensor {
    let mut data = pool.pop().unwrap_or_default();
    data.clear();
    data.extend_from_slice(src);
    Tensor::from_vec(rows, cols, data)
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[inline]
fn softplus(z: f32) -> f32 {
    z.max(0.0) + (-z.abs()).exp().ln_1p()
}

/// Numerically stable multi-label binary cross-entropy with logits, averaged
/// over all elements — PyTorch's `BCEWithLogitsLoss` with an optional
/// `pos_weight` (useful here because almost all page labels are 0).
/// Returns a `[1,1]` scalar var.
pub fn bce_with_logits(tape: &mut Tape, logits: Var, targets: Tensor, pos_weight: f32) -> Var {
    let z = tape.value(logits);
    assert_eq!(z.shape(), targets.shape(), "bce shape mismatch");
    let (m, n) = z.shape();
    let mut total = 0.0f64;
    for (&zv, &t) in z.as_slice().iter().zip(targets.as_slice()) {
        let l = t * pos_weight * softplus(-zv) + (1.0 - t) * (zv + softplus(-zv));
        total += l as f64;
    }
    let v = Tensor::full(1, 1, (total / (m * n) as f64) as f32);
    tape.push_bce(v, logits, targets, pos_weight)
}

impl Tape {
    fn push_bce(&mut self, value: Tensor, logits: Var, targets: Tensor, pos_weight: f32) -> Var {
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets,
                pos_weight,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check: `build` must construct the full graph
    /// from a leaf injected with tensor `x` and return the scalar loss var.
    fn gradcheck(x0: Tensor, build: impl Fn(&mut Tape, Var) -> Var) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        assert_eq!(tape.value(loss).shape(), (1, 1), "loss must be scalar");
        let grads = tape.backward(loss);
        let analytic = grads.get(x).clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        let (m, n) = x0.shape();
        for r in 0..m {
            for c in 0..n {
                let mut plus = x0.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = x0.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let f = |t: Tensor| {
                    let mut tape = Tape::new();
                    let x = tape.leaf(t);
                    let loss = build(&mut tape, x);
                    tape.value(loss).get(0, 0)
                };
                let num = (f(plus) - f(minus)) / (2.0 * eps);
                let ana = analytic.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs().max(ana.abs())),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// Reduce any matrix to a scalar by BCE against fixed targets — gives a
    /// smooth scalarization for gradcheck.
    fn to_scalar(tape: &mut Tape, v: Var) -> Var {
        let (m, n) = tape.value(v).shape();
        let targets = Tensor::from_fn(m, n, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.0 });
        bce_with_logits(tape, v, targets, 1.0)
    }

    fn test_input(m: usize, n: usize) -> Tensor {
        Tensor::from_fn(m, n, |r, c| ((r * n + c) as f32) * 0.31 - 0.8)
    }

    #[test]
    fn grad_bce_direct() {
        gradcheck(test_input(2, 3), |tape, x| to_scalar(tape, x));
    }

    #[test]
    fn grad_bce_pos_weight() {
        gradcheck(test_input(2, 3), |tape, x| {
            let t = Tensor::from_fn(2, 3, |r, _| if r == 0 { 1.0 } else { 0.0 });
            bce_with_logits(tape, x, t, 3.5)
        });
    }

    #[test]
    fn grad_matmul() {
        gradcheck(test_input(2, 3), |tape, x| {
            let w = tape.leaf(Tensor::from_fn(3, 2, |r, c| {
                0.2 * (r as f32) - 0.1 * c as f32
            }));
            let y = tape.matmul(x, w);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_matmul_right_operand() {
        // Check gradient flowing to the right operand of matmul.
        gradcheck(test_input(3, 2), |tape, x| {
            let a = tape.leaf(Tensor::from_fn(2, 3, |r, c| 0.3 * (r + c) as f32 - 0.2));
            let y = tape.matmul(a, x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_linear_input() {
        gradcheck(test_input(2, 3), |tape, x| {
            let w = tape.leaf(Tensor::from_fn(3, 2, |r, c| {
                0.2 * (r as f32) - 0.1 * c as f32
            }));
            let b = tape.leaf(Tensor::from_fn(1, 2, |_, c| 0.3 - 0.2 * c as f32));
            let y = tape.linear(x, w, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_linear_weight() {
        gradcheck(test_input(3, 2), |tape, w| {
            let x = tape.leaf(Tensor::from_fn(2, 3, |r, c| 0.3 * (r + c) as f32 - 0.2));
            let b = tape.leaf(Tensor::from_fn(1, 2, |_, c| 0.1 * c as f32));
            let y = tape.linear(x, w, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_linear_bias() {
        gradcheck(test_input(1, 2), |tape, b| {
            let x = tape.leaf(test_input(3, 4));
            let w = tape.leaf(Tensor::from_fn(4, 2, |r, c| {
                0.15 * (r as f32) - 0.1 * c as f32
            }));
            let y = tape.linear(x, w, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn linear_matches_matmul_add_row() {
        let xv = test_input(3, 4);
        let wv = Tensor::from_fn(4, 2, |r, c| 0.07 * (r as f32) - 0.11 * c as f32);
        let bv = Tensor::from_fn(1, 2, |_, c| 0.4 - 0.3 * c as f32);

        let mut t1 = Tape::new();
        let (x1, w1, b1) = (
            t1.leaf(xv.clone()),
            t1.leaf(wv.clone()),
            t1.leaf(bv.clone()),
        );
        let y1 = t1.linear(x1, w1, b1);
        let l1 = to_scalar(&mut t1, y1);
        let g1 = t1.backward(l1);

        let mut t2 = Tape::new();
        let (x2, w2, b2) = (t2.leaf(xv), t2.leaf(wv), t2.leaf(bv));
        let xw = t2.matmul(x2, w2);
        let y2 = t2.add_row(xw, b2);
        let l2 = to_scalar(&mut t2, y2);
        let g2 = t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2));
        assert_eq!(g1.get(x1), g2.get(x2));
        assert_eq!(g1.get(w1), g2.get(w2));
        assert_eq!(g1.get(b1), g2.get(b2));
    }

    #[test]
    fn tape_reuse_after_reset_matches_fresh() {
        // Two minibatches through one reused tape must equal two fresh tapes.
        let run = |tape: &mut Tape, shift: f32| {
            let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| {
                0.2 * (r * 4 + c) as f32 - shift
            }));
            let w = tape.leaf(Tensor::from_fn(4, 2, |r, c| {
                0.1 * (r as f32) - 0.05 * c as f32
            }));
            let b = tape.leaf(Tensor::from_fn(1, 2, |_, c| 0.2 * c as f32));
            let h = tape.linear(x, w, b);
            let a = tape.relu(h);
            let loss = to_scalar(tape, a);
            let grads = tape.backward(loss);
            let (gw, gb) = (grads.get(w).clone(), grads.get(b).clone());
            tape.absorb(grads);
            (tape.value(loss).get(0, 0), gw, gb)
        };
        let mut reused = Tape::new();
        let first_reused = run(&mut reused, 0.8);
        reused.reset();
        let second_reused = run(&mut reused, 0.3);

        let mut f1 = Tape::new();
        let mut f2 = Tape::new();
        assert_eq!(first_reused, run(&mut f1, 0.8));
        assert_eq!(second_reused, run(&mut f2, 0.3));
    }

    #[test]
    fn grad_add_and_scale() {
        gradcheck(test_input(2, 2), |tape, x| {
            let y = tape.scale(x, 1.7);
            let z = tape.add(y, x);
            to_scalar(tape, z)
        });
    }

    #[test]
    fn grad_add_row() {
        gradcheck(test_input(1, 4), |tape, b| {
            let a = tape.leaf(test_input(3, 4));
            let y = tape.add_row(a, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_relu() {
        gradcheck(test_input(2, 4), |tape, x| {
            let y = tape.relu(x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_softmax() {
        gradcheck(test_input(2, 4), |tape, x| {
            let y = tape.softmax_rows(x);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_layer_norm_input() {
        gradcheck(test_input(2, 4), |tape, x| {
            let g = tape.leaf(Tensor::from_fn(1, 4, |_, c| 1.0 + 0.1 * c as f32));
            let b = tape.leaf(Tensor::from_fn(1, 4, |_, c| 0.05 * c as f32));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_layer_norm_gain_bias() {
        gradcheck(test_input(1, 4), |tape, g| {
            let x = tape.leaf(test_input(3, 4));
            let b = tape.leaf(Tensor::zeros(1, 4));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
        gradcheck(Tensor::zeros(1, 4), |tape, b| {
            let x = tape.leaf(test_input(3, 4));
            let g = tape.leaf(Tensor::full(1, 4, 1.0));
            let y = tape.layer_norm(x, g, b);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_embedding() {
        gradcheck(test_input(5, 3), |tape, table| {
            let y = tape.embed(table, &[0, 2, 2, 4]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_transpose_slice_concat() {
        gradcheck(test_input(3, 4), |tape, x| {
            let t = tape.transpose(x); // [4,3]
            let s1 = tape.slice_cols(t, 0, 2); // [4,2]
            let s2 = tape.slice_cols(t, 1, 2); // overlapping slice
            let y = tape.concat_cols(&[s1, s2]); // [4,4]
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_slice_and_concat_rows() {
        gradcheck(test_input(4, 3), |tape, x| {
            let top = tape.slice_rows(x, 0, 2);
            let bottom = tape.slice_rows(x, 1, 3); // overlapping
            let y = tape.concat_rows(&[bottom, top]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_gather_rows_with_duplicates() {
        gradcheck(test_input(4, 3), |tape, x| {
            let y = tape.gather_rows(x, &[3, 0, 3, 2]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_stack_rows() {
        gradcheck(test_input(1, 3), |tape, x| {
            let x2 = tape.scale(x, 2.0);
            let y = tape.stack_rows(&[x, x2, x]);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn grad_attention_like_composite() {
        // A miniature attention head end-to-end.
        gradcheck(test_input(3, 4), |tape, x| {
            let wq = tape.leaf(Tensor::from_fn(4, 2, |r, c| {
                0.1 * (r as f32) - 0.15 * c as f32
            }));
            let wk = tape.leaf(Tensor::from_fn(4, 2, |r, c| {
                0.12 * (c as f32) - 0.05 * r as f32
            }));
            let wv = tape.leaf(Tensor::from_fn(4, 2, |r, c| 0.2 - 0.03 * (r + c) as f32));
            let q = tape.matmul(x, wq);
            let k = tape.matmul(x, wk);
            let v = tape.matmul(x, wv);
            let kt = tape.transpose(k);
            let scores = tape.matmul(q, kt);
            let scaled = tape.scale(scores, 1.0 / (2.0f32).sqrt());
            let attn = tape.softmax_rows(scaled);
            let out = tape.matmul(attn, v);
            to_scalar(tape, out)
        });
    }

    #[test]
    fn grad_add_const_passthrough() {
        gradcheck(test_input(2, 3), |tape, x| {
            let c = Tensor::from_fn(2, 3, |r, c| (r + c) as f32);
            let y = tape.add_const(x, &c);
            to_scalar(tape, y)
        });
    }

    #[test]
    fn paramset_bookkeeping() {
        let mut p = ParamSet::new();
        let a = p.add("a", Tensor::zeros(2, 3));
        let b = p.add("b", Tensor::zeros(1, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 10);
        assert_eq!(p.size_bytes(), 40);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.get(b).shape(), (1, 4));
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        assert_eq!(vars.len(), 2);
        assert_eq!(tape.value(vars[0]).shape(), (2, 3));
    }

    #[test]
    fn no_grad_for_unused_leaf() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(1, 1, 1.0));
        let unused = tape.leaf(Tensor::full(1, 1, 1.0));
        let loss = bce_with_logits(&mut tape, x, Tensor::full(1, 1, 1.0), 1.0);
        let grads = tape.backward(loss);
        assert!(grads.try_get(unused).is_none());
        assert!(grads.try_get(x).is_some());
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // y = x + x  ->  dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(1, 1, 0.3));
        let y = tape.add(x, x);
        let loss = bce_with_logits(&mut tape, y, Tensor::full(1, 1, 1.0), 1.0);
        let grads = tape.backward(loss);
        let gx = grads.get(x).get(0, 0);
        // dL/dy = sigmoid(0.6) - 1; dL/dx = 2 * that.
        let expected = 2.0 * (1.0 / (1.0 + (-0.6f32).exp()) - 1.0);
        assert!((gx - expected).abs() < 1e-5, "{gx} vs {expected}");
    }
}
