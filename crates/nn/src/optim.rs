//! Optimizers: Adam (the paper's choice) and SGD (for tests/ablations).

use crate::tape::{Gradients, ParamSet, Var};
use crate::tensor::Tensor;

/// Adam with bias correction (Kingma & Ba 2015), operating on a [`ParamSet`].
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the given learning rate and default betas (0.9, 0.999).
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let shapes: Vec<Tensor> = params
            .iter()
            .map(|(_, t)| Tensor::zeros(t.rows(), t.cols()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes.clone(),
            v: shapes,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update. `param_vars[i]` must be the tape var that
    /// `ParamId(i)` was injected as (i.e. the output of
    /// [`ParamSet::inject`]). Parameters whose gradient is absent (not on the
    /// loss path this step) are left unchanged.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
    pub fn step(&mut self, params: &mut ParamSet, param_vars: &[Var], grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let Some(g) = grads.try_get(param_vars[i]) else {
                continue;
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = params.get_mut(crate::tape::ParamId(i));
            let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
            for ((pv, gv), (mv, vv)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

/// Global L2 norm of the gradients that reached `vars` — the scalar the
/// training-telemetry epoch records carry. Accumulates in `f64` so tiny
/// per-element squares don't vanish. Not on any hot path: the classifier
/// only calls it when telemetry capture is enabled.
pub fn grad_l2_norm(grads: &Gradients, vars: &[Var]) -> f32 {
    let mut sq = 0.0f64;
    for &v in vars {
        if let Some(g) = grads.try_get(v) {
            for &x in g.as_slice() {
                sq += (x as f64) * (x as f64);
            }
        }
    }
    sq.sqrt() as f32
}

/// Plain SGD (tests and ablations).
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply `p -= lr * g` for every parameter with a gradient.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
    pub fn step(&self, params: &mut ParamSet, param_vars: &[Var], grads: &Gradients) {
        for i in 0..params.len() {
            let Some(g) = grads.try_get(param_vars[i]) else {
                continue;
            };
            params
                .get_mut(crate::tape::ParamId(i))
                .add_scaled(g, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{bce_with_logits, Tape};

    /// Minimize BCE of a single logit toward target 1: the logit must grow.
    fn train(optimize: impl Fn(&mut ParamSet, &[Var], &Gradients)) -> f32 {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 1, 0.0));
        for _ in 0..200 {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let loss = bce_with_logits(&mut tape, vars[w.0], Tensor::full(1, 1, 1.0), 1.0);
            let grads = tape.backward(loss);
            optimize(&mut params, &vars, &grads);
        }
        params.get(w).get(0, 0)
    }

    #[test]
    fn sgd_minimizes() {
        let sgd = Sgd::new(0.5);
        let w = train(|p, v, g| sgd.step(p, v, g));
        assert!(w > 2.0, "logit should grow toward +inf, got {w}");
    }

    #[test]
    fn adam_minimizes_faster_than_tiny_sgd() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 1, 0.0));
        let mut adam = Adam::new(&params, 0.1);
        for _ in 0..200 {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let loss = bce_with_logits(&mut tape, vars[w.0], Tensor::full(1, 1, 1.0), 1.0);
            let grads = tape.backward(loss);
            adam.step(&mut params, &vars, &grads);
        }
        assert!(params.get(w).get(0, 0) > 3.0);
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn adam_skips_params_without_grad() {
        let mut params = ParamSet::new();
        let used = params.add("used", Tensor::full(1, 1, 0.0));
        let unused = params.add("unused", Tensor::full(1, 1, 5.0));
        let mut adam = Adam::new(&params, 0.1);
        let mut tape = Tape::new();
        let vars = params.inject(&mut tape);
        let loss = bce_with_logits(&mut tape, vars[used.0], Tensor::full(1, 1, 1.0), 1.0);
        let grads = tape.backward(loss);
        adam.step(&mut params, &vars, &grads);
        assert_eq!(params.get(unused).get(0, 0), 5.0);
        assert_ne!(params.get(used).get(0, 0), 0.0);
    }

    #[test]
    fn grad_l2_norm_matches_hand_computation() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::zeros(1, 2));
        let unused = params.add("unused", Tensor::zeros(1, 3));
        let mut tape = Tape::new();
        let vars = params.inject(&mut tape);
        // BCE-with-logits at logit 0 / target 1 has gradient sigmoid(0)-1 =
        // -0.5 per element (mean-reduced over the 2 elements → -0.25 each).
        let loss = bce_with_logits(&mut tape, vars[w.0], Tensor::full(1, 2, 1.0), 1.0);
        let grads = tape.backward(loss);
        let norm = grad_l2_norm(&grads, &vars);
        let per_elem = 0.25f32;
        let expected = (2.0 * per_elem * per_elem).sqrt();
        assert!(
            (norm - expected).abs() < 1e-5,
            "norm {norm} vs expected {expected}"
        );
        // The unused parameter has no gradient and contributes nothing.
        assert_eq!(grad_l2_norm(&grads, &[vars[unused.0]]), 0.0);
    }

    #[test]
    fn quadratic_convergence_multi_dim() {
        // Minimize BCE over a 4-logit row with mixed targets; each logit
        // should move toward the sign of its target.
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::zeros(1, 4));
        let targets = Tensor::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let mut adam = Adam::new(&params, 0.05);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let loss = bce_with_logits(&mut tape, vars[w.0], targets.clone(), 1.0);
            let grads = tape.backward(loss);
            adam.step(&mut params, &vars, &grads);
        }
        let t = params.get(w);
        assert!(t.get(0, 0) > 1.0 && t.get(0, 2) > 1.0);
        assert!(t.get(0, 1) < -1.0 && t.get(0, 3) < -1.0);
    }
}
