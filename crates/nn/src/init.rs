//! Weight initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A deterministic initializer (all experiments are seed-reproducible).
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Seeded initializer.
    pub fn new(seed: u64) -> Self {
        Initializer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[-a, a]`.
    pub fn uniform(&mut self, rows: usize, cols: usize, a: f32) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            *v = self.rng.gen_range(-a..=a);
        }
        t
    }

    /// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(fan_in, fan_out, a)
    }

    /// Kaiming/He uniform for ReLU layers.
    pub fn kaiming(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let a = (6.0 / fan_in as f32).sqrt();
        self.uniform(fan_in, fan_out, a)
    }

    /// Normal(0, std) — embedding tables.
    pub fn normal(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            // Box-Muller.
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            *v = std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
        t
    }
}

/// Sinusoidal positional encodings (`[max_len, dim]`), as in "Attention Is
/// All You Need" — the paper appends "sequence information" to the embedded
/// tokens before the transformer encoder.
pub fn positional_encoding(max_len: usize, dim: usize) -> Tensor {
    Tensor::from_fn(max_len, dim, |pos, i| {
        let exponent = (2 * (i / 2)) as f32 / dim as f32;
        let angle = pos as f32 / 10_000f32.powf(exponent);
        if i % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Initializer::new(7).xavier(4, 4);
        let b = Initializer::new(7).xavier(4, 4);
        assert_eq!(a, b);
        let c = Initializer::new(8).xavier(4, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_bounds() {
        let t = Initializer::new(1).xavier(100, 100);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
        // Not degenerate.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let t = Initializer::new(3).normal(100, 100, 0.5);
        let n = t.len() as f32;
        let mean = t.sum() / n;
        let var = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = positional_encoding(32, 10);
        assert_eq!(pe.shape(), (32, 10));
        // Row 0: sin(0)=0 at even dims, cos(0)=1 at odd dims.
        for c in 0..10 {
            let expect = if c % 2 == 0 { 0.0 } else { 1.0 };
            assert!((pe.get(0, c) - expect).abs() < 1e-6);
        }
        // Distinct positions get distinct encodings.
        assert!(pe.row(1) != pe.row(2));
        // Bounded.
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }
}
