//! Deterministic worker-pool layer shared by every parallel hot path.
//!
//! One knob controls the whole workspace's parallelism: the `PYTHIA_THREADS`
//! environment variable (read once), overridable at runtime via
//! [`set_thread_override`] (benches and determinism tests flip between serial
//! and parallel in one process). [`Tensor::matmul`](crate::Tensor::matmul)'s
//! row bands and `pythia-core`'s per-object model fan-out both size
//! themselves from [`configured_threads`].
//!
//! Determinism contract: [`parallel_map_vec`] assigns each item a fixed
//! output slot (its input index) and every item is processed by exactly one
//! worker with no shared mutable state, so the returned vector is identical
//! for any thread count — including 1. Callers guarantee `f` itself is a
//! pure function of `(index, item)`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Runtime override (0 = unset). Lets benches/tests compare serial vs
/// parallel in one process without re-reading the environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `PYTHIA_THREADS` parsed once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Force the pool width (`set_thread_override(1)` = serial everywhere);
/// `set_thread_override(0)` restores the environment/default behaviour.
pub fn set_thread_override(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count every parallel path in the workspace uses: the runtime
/// override if set, else `PYTHIA_THREADS`, else the machine's available
/// parallelism. Always at least 1.
pub fn configured_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    let env = ENV_THREADS.get_or_init(|| {
        std::env::var("PYTHIA_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
    });
    match env {
        Some(n) if *n > 0 => *n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    }
}

/// Map `f` over `items` on the shared pool, returning results in input
/// order. Items are claimed with an atomic cursor (good load balance when
/// per-item cost is uneven, e.g. object models of very different sizes);
/// each result lands in the slot of its input index, so the output is
/// bit-identical to the serial `items.into_iter().enumerate().map(f)` run.
pub fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_vec_labeled("nn.task", items, f)
}

/// [`parallel_map_vec`] with a static task label: when wall-task capture is
/// on ([`pythia_obs::wall::set_enabled`]), every item's execution is recorded
/// as a `(label, worker, item, start, duration)` span for the trace's
/// wall-clock process. Wall capture never affects the returned values or
/// their order — the determinism contract is unchanged.
pub fn parallel_map_vec_labeled<T, R, F>(label: &'static str, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = configured_threads().min(n);
    let capture = pythia_obs::wall::enabled();
    let train_capture = pythia_obs::train::enabled();
    let timed = |worker: u32, i: usize, item: T| {
        if train_capture {
            // Tag the worker thread so training telemetry recorded inside
            // `f` (per-epoch loss/grad-norm records from the classifier)
            // knows which fleet item and worker it belongs to.
            pythia_obs::train::set_context(worker, i as u64);
        }
        if !capture {
            return f(i, item);
        }
        let start_us = pythia_obs::wall::now_us();
        let r = f(i, item);
        pythia_obs::wall::record(pythia_obs::wall::WallTask {
            label,
            worker,
            item: i as u64,
            // Ambient request attribution: the serving loop brackets each
            // batched inference dispatch with `wall::set_request`.
            req: pythia_obs::wall::current_request(),
            start_us,
            dur_us: pythia_obs::wall::now_us().saturating_sub(start_us),
        });
        r
    };
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| timed(0, i, t))
            .collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (timed, cursor, inputs, outputs) = (&timed, &cursor, &inputs, &outputs);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                let r = timed(w as u32, i, item);
                *outputs[i].lock().unwrap() = Some(r);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// [`parallel_map_vec_labeled`] with **shard-affine** dispatch: item `i` is
/// processed by worker `keys[i] % threads` (its shard's home worker), and
/// each worker walks its items in ascending input order. Unlike the
/// cursor-claimed variants, an item's worker is a pure function of its shard
/// key and the pool width — the property a sharded model fleet wants so one
/// object's model always runs (and keeps its caches warm) on the same worker
/// within a pool configuration.
///
/// The determinism contract is unchanged and *stronger than it needs to be*:
/// every result still lands in the slot of its input index, so the returned
/// vector is bit-identical to the serial run for any thread count — only the
/// worker executing each item moves.
pub fn parallel_map_vec_sharded_labeled<T, R, F>(
    label: &'static str,
    items: Vec<T>,
    keys: &[u64],
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    assert_eq!(n, keys.len(), "one shard key per item");
    let threads = configured_threads().min(n);
    let capture = pythia_obs::wall::enabled();
    let train_capture = pythia_obs::train::enabled();
    let timed = |worker: u32, i: usize, item: T| {
        if train_capture {
            pythia_obs::train::set_context(worker, i as u64);
        }
        if !capture {
            return f(i, item);
        }
        let start_us = pythia_obs::wall::now_us();
        let r = f(i, item);
        pythia_obs::wall::record(pythia_obs::wall::WallTask {
            label,
            worker,
            item: i as u64,
            // Ambient request attribution: the serving loop brackets each
            // batched inference dispatch with `wall::set_request`.
            req: pythia_obs::wall::current_request(),
            start_us,
            dur_us: pythia_obs::wall::now_us().saturating_sub(start_us),
        });
        r
    };
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| timed(0, i, t))
            .collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (timed, inputs, outputs) = (&timed, &inputs, &outputs);
            scope.spawn(move || {
                for i in 0..n {
                    if keys[i] % threads as u64 != w as u64 {
                        continue;
                    }
                    let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                    let r = timed(w as u32, i, item);
                    *outputs[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// [`parallel_map_vec_sharded_labeled`] over a slice of `Sync` items.
pub fn parallel_map_sharded_labeled<T, R, F>(
    label: &'static str,
    items: &[T],
    keys: &[u64],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_vec_sharded_labeled(label, items.iter().collect(), keys, |i, t: &T| f(i, t))
}

/// [`parallel_map_vec`] over a slice of `Sync` items.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_vec(items.iter().collect(), |i, t: &T| f(i, t))
}

/// [`parallel_map`] with a static wall-task label (see
/// [`parallel_map_vec_labeled`]).
pub fn parallel_map_labeled<T, R, F>(label: &'static str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_vec_labeled(label, items.iter().collect(), |i, t: &T| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        set_thread_override(1);
        let serial = parallel_map(&items, |i, &x| x.wrapping_mul(i as u64 + 3));
        set_thread_override(4);
        let parallel = parallel_map(&items, |i, &x| x.wrapping_mul(i as u64 + 3));
        set_thread_override(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map_vec(empty, |_, x: u8| x).is_empty());
        assert_eq!(parallel_map_vec(vec![7u8], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn moves_owned_items() {
        let items: Vec<String> = (0..8).map(|i| format!("s{i}")).collect();
        let out = parallel_map_vec(items, |_, s| s.len());
        assert_eq!(out, vec![2; 8]);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn sharded_map_matches_cursor_map_for_any_width() {
        let items: Vec<u64> = (0..41).collect();
        let keys: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        set_thread_override(1);
        let serial = parallel_map_sharded_labeled("nn.shard_test", &items, &keys, |i, &x| {
            x.wrapping_mul(i as u64 + 11)
        });
        for width in [2, 3, 8] {
            set_thread_override(width);
            let sharded = parallel_map_sharded_labeled("nn.shard_test", &items, &keys, |i, &x| {
                x.wrapping_mul(i as u64 + 11)
            });
            assert_eq!(serial, sharded, "width {width}");
        }
        set_thread_override(0);
        let plain = parallel_map(&items, |i, &x| x.wrapping_mul(i as u64 + 11));
        assert_eq!(serial, plain, "sharded == cursor-claimed results");
    }

    #[test]
    fn sharded_map_pins_items_to_their_home_worker() {
        let items: Vec<u64> = (0..24).collect();
        // Shard key = item value, so item x belongs to worker x % width.
        let keys: Vec<u64> = items.clone();
        set_thread_override(4);
        pythia_obs::wall::set_enabled(true);
        let out = parallel_map_sharded_labeled("nn.shard_affine", &items, &keys, |_, &x| x);
        pythia_obs::wall::set_enabled(false);
        set_thread_override(0);
        assert_eq!(out, items);
        let mine: Vec<_> = pythia_obs::wall::drain()
            .into_iter()
            .filter(|t| t.label == "nn.shard_affine")
            .collect();
        assert_eq!(mine.len(), 24, "one wall task per item");
        for t in mine {
            assert_eq!(t.worker as u64, t.item % 4, "item {} off-shard", t.item);
        }
    }

    #[test]
    fn sharded_map_handles_empty_and_owned_items() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map_vec_sharded_labeled("nn.t", empty, &[], |_, x: u8| x).is_empty());
        let items: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        let keys = [5u64, 4, 3, 2, 1, 0];
        let out = parallel_map_vec_sharded_labeled("nn.t", items, &keys, |_, s| s.len());
        assert_eq!(out, vec![2; 6]);
    }

    #[test]
    fn labeled_map_records_wall_tasks_without_changing_results() {
        let items: Vec<u64> = (0..5).collect();
        pythia_obs::wall::set_enabled(true);
        let out = parallel_map_labeled("nn.pool_test", &items, |i, &x| x + i as u64);
        pythia_obs::wall::set_enabled(false);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        // Other tests in this process may have recorded tasks while capture
        // was on; ours are identified by the unique label.
        let mine: Vec<_> = pythia_obs::wall::drain()
            .into_iter()
            .filter(|t| t.label == "nn.pool_test")
            .collect();
        assert_eq!(mine.len(), 5, "one wall task per item");
        let mut covered: Vec<u64> = mine.iter().map(|t| t.item).collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
    }
}
