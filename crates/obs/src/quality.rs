//! Streaming quality telemetry and drift detection.
//!
//! [`QualityTracker`] consumes one [`QualityOutcome`] per served admission
//! (built by the server from a `BufferStats::diff` snapshot plus the
//! admission wait) and maintains, per `(tenant, template)`:
//!
//! * a **rolling window** (last [`QualityConfig::window`] outcomes) with
//!   running integer sums, so the windowed demand hit rate and prefetch
//!   precision/recall are O(1) per push and *exactly* equal to the batch
//!   computation over the same outcomes ([`batch_totals`] — pinned by
//!   `tests/proptest_quality.rs`);
//! * **EWMAs** of per-outcome hit rate and precision (`α =`
//!   [`QualityConfig::ewma_alpha`]), the smoothed inputs the drift
//!   detectors watch;
//! * a one-sided **Page–Hinkley** (CUSUM-style) detector per signal: with
//!   running mean `μ` over the EWMA'd samples it accumulates
//!   `s ← max(0, s + (μ − x − δ))` and alerts when `s > λ` after a warm-up
//!   of `ph_min_samples` — i.e. it fires only on a sustained *drop*.
//!
//! Per tenant it additionally tracks the **template-mix divergence**: the
//! last `mix_recent` templates vs a trailing baseline of the `mix_baseline`
//! templates before them, scored as total-variation distance. A stationary
//! (even cyclic) mix keeps the two distributions identical, so the score
//! stays 0; rotating the mix pushes it to 1 within `mix_recent` post-shift
//! observations — the bounded detection delay the CI drift gate pins.
//!
//! Every alert bumps a monotone per-tenant counter, stamps the last-alert
//! instant, emits a `drift.alert` trace instant on the dedicated
//! [`crate::tid::QUALITY`] track, and starts a cooldown of
//! [`QualityConfig::alert_cooldown`] observations so one regime change does
//! not spam the trace. Observations themselves emit `quality.observe`
//! instants and refresh labeled Prometheus series
//! (`quality.hit_rate_e6{tenant,template}` etc.) on the recorder.
//!
//! The tracker holds no locks and never consults the wall clock or RNG:
//! given the same outcome sequence it is fully deterministic, and because
//! it only *reads* serving state it cannot perturb virtual time or
//! admission order (the bit-identity pins stay intact).

use std::collections::{BTreeMap, VecDeque};

use crate::{tid, Recorder, Track};

/// Tuning knobs for windows, EWMAs and drift detectors. The defaults are
/// deliberately conservative: stationary CI runs must produce zero alerts.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Rolling-window length in outcomes per `(tenant, template)` slot.
    pub window: usize,
    /// EWMA smoothing factor in `(0, 1]` for hit rate / precision.
    pub ewma_alpha: f64,
    /// Page–Hinkley tolerance `δ`: drops smaller than this are ignored.
    pub ph_delta: f64,
    /// Page–Hinkley threshold `λ`: alert when the cumulative drop
    /// statistic exceeds it.
    pub ph_lambda: f64,
    /// Page–Hinkley warm-up: no alerts before this many samples.
    pub ph_min_samples: u64,
    /// Recent template-mix window length (per tenant).
    pub mix_recent: usize,
    /// Trailing baseline mix length (per tenant); the mix detector is
    /// silent until the baseline is full.
    pub mix_baseline: usize,
    /// Total-variation distance in `[0, 1]` at or above which the mix
    /// detector alerts.
    pub mix_threshold: f64,
    /// Observations to suppress further alerts for a tenant after one
    /// fires.
    pub alert_cooldown: u64,
}

impl Default for QualityConfig {
    fn default() -> QualityConfig {
        QualityConfig {
            window: 32,
            ewma_alpha: 0.2,
            ph_delta: 0.1,
            ph_lambda: 1.5,
            ph_min_samples: 16,
            mix_recent: 8,
            mix_baseline: 32,
            mix_threshold: 0.5,
            alert_cooldown: 16,
        }
    }
}

/// Prediction-quality raw counts for one served admission — the integer
/// fields of a `BufferStats::diff` snapshot plus the admission wait. Kept
/// as plain `u64`s so `pythia-obs` stays dependency-free (the buffer crate
/// depends on this one, not the other way round).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityOutcome {
    /// Demand reads served from the buffer pool.
    pub hits: u64,
    /// Demand reads served from the OS page cache.
    pub os_copies: u64,
    /// Demand reads that went to disk.
    pub disk_reads: u64,
    /// Prefetch requests issued.
    pub prefetch_issued: u64,
    /// Prefetched pages later consumed by a demand read.
    pub prefetch_useful: u64,
    /// Prefetched pages evicted unused.
    pub prefetch_wasted: u64,
    /// Admission wait (arrival → admission) in virtual microseconds.
    pub wait_us: u64,
}

impl QualityOutcome {
    /// Demand reads in this outcome.
    pub fn demand_reads(&self) -> u64 {
        self.hits + self.os_copies + self.disk_reads
    }

    /// Buffer-pool hit rate; 0.0 when no demand reads.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.demand_reads())
    }

    /// Prefetch precision: useful / issued; 0.0 when nothing was issued.
    pub fn prefetch_precision(&self) -> f64 {
        ratio(self.prefetch_useful, self.prefetch_issued)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Fixed-point export: a non-negative score as integer millionths (0 for
/// NaN/negative), matching the `*_e6` convention of the train telemetry.
pub fn rate_e6(x: f64) -> u64 {
    if !x.is_finite() || x <= 0.0 {
        0
    } else {
        (x * 1e6).round() as u64
    }
}

use rate_e6 as e6;

/// Integer sums over a set of outcomes, with the derived rates computed the
/// same way whether the set is a rolling window, a lifetime total or a
/// batch slice — that shared arithmetic is what makes windowed == batch an
/// *exact* f64 equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityTotals {
    pub outcomes: u64,
    pub hits: u64,
    pub os_copies: u64,
    pub disk_reads: u64,
    pub prefetch_issued: u64,
    pub prefetch_useful: u64,
    pub prefetch_wasted: u64,
    pub wait_us: u64,
}

impl QualityTotals {
    pub fn add(&mut self, o: &QualityOutcome) {
        self.outcomes += 1;
        self.hits += o.hits;
        self.os_copies += o.os_copies;
        self.disk_reads += o.disk_reads;
        self.prefetch_issued += o.prefetch_issued;
        self.prefetch_useful += o.prefetch_useful;
        self.prefetch_wasted += o.prefetch_wasted;
        self.wait_us += o.wait_us;
    }

    pub fn sub(&mut self, o: &QualityOutcome) {
        self.outcomes -= 1;
        self.hits -= o.hits;
        self.os_copies -= o.os_copies;
        self.disk_reads -= o.disk_reads;
        self.prefetch_issued -= o.prefetch_issued;
        self.prefetch_useful -= o.prefetch_useful;
        self.prefetch_wasted -= o.prefetch_wasted;
        self.wait_us -= o.wait_us;
    }

    /// Fold another totals into this one (for partition checks).
    pub fn merge(&mut self, other: &QualityTotals) {
        self.outcomes += other.outcomes;
        self.hits += other.hits;
        self.os_copies += other.os_copies;
        self.disk_reads += other.disk_reads;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_useful += other.prefetch_useful;
        self.prefetch_wasted += other.prefetch_wasted;
        self.wait_us += other.wait_us;
    }

    pub fn demand_reads(&self) -> u64 {
        self.hits + self.os_copies + self.disk_reads
    }

    /// Demand hit rate; 0.0 (never NaN) when empty.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.demand_reads())
    }

    /// Prefetch precision: useful / issued; 0.0 when nothing was issued.
    pub fn prefetch_precision(&self) -> f64 {
        ratio(self.prefetch_useful, self.prefetch_issued)
    }

    /// Prefetch recall: useful prefetches over all demand opportunities
    /// (`useful + os_copies + disk_reads`); 0.0 when there were none.
    pub fn prefetch_recall(&self) -> f64 {
        ratio(
            self.prefetch_useful,
            self.prefetch_useful + self.os_copies + self.disk_reads,
        )
    }

    /// F1 of prefetch precision and recall; 0.0 when both are 0.
    pub fn prefetch_f1(&self) -> f64 {
        let (p, r) = (self.prefetch_precision(), self.prefetch_recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Mean admission wait in µs (integer division); 0 when empty.
    pub fn mean_wait_us(&self) -> u64 {
        if self.outcomes == 0 {
            0
        } else {
            self.wait_us / self.outcomes
        }
    }
}

/// Batch quality sums over a slice of outcomes — the reference the rolling
/// window is proptested against.
pub fn batch_totals(outcomes: &[QualityOutcome]) -> QualityTotals {
    let mut t = QualityTotals::default();
    for o in outcomes {
        t.add(o);
    }
    t
}

/// Which detector raised a [`DriftAlert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Page–Hinkley on the EWMA'd demand hit rate.
    HitRate,
    /// Page–Hinkley on the EWMA'd prefetch precision.
    Precision,
    /// Template-mix total-variation divergence.
    TemplateMix,
    /// Operator-initiated drill ([`QualityTracker::force_alert`]) — not a
    /// detector, but exercises the whole alert path end to end.
    Drill,
}

impl DriftKind {
    /// Stable numeric code used in trace-event args.
    pub fn code(&self) -> u64 {
        match self {
            DriftKind::HitRate => 0,
            DriftKind::Precision => 1,
            DriftKind::TemplateMix => 2,
            DriftKind::Drill => 3,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            DriftKind::HitRate => "hit_rate",
            DriftKind::Precision => "precision",
            DriftKind::TemplateMix => "template_mix",
            DriftKind::Drill => "drill",
        }
    }
}

/// One raised drift alert, also emitted as a `drift.alert` trace instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlert {
    pub tenant: u32,
    pub kind: DriftKind,
    /// Detector score at alert time (PH statistic or TV distance).
    pub score: f64,
    /// Virtual timestamp the alert was raised at.
    pub at_us: u64,
}

/// One-sided Page–Hinkley state: detects a sustained *decrease* of the
/// observed signal below its running mean.
#[derive(Debug, Clone, Copy, Default)]
struct PageHinkley {
    n: u64,
    mean: f64,
    cum: f64,
}

impl PageHinkley {
    /// Feed one sample; returns `true` (and resets) when the drop
    /// statistic crosses `lambda` after `min_samples` of warm-up.
    fn update(&mut self, x: f64, delta: f64, lambda: f64, min_samples: u64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum = (self.cum + (self.mean - x - delta)).max(0.0);
        if self.n >= min_samples && self.cum > lambda {
            *self = PageHinkley::default();
            return true;
        }
        false
    }

    fn score(&self) -> f64 {
        self.cum
    }
}

/// Per-`(tenant, template)` rolling window + EWMAs + PH detectors.
#[derive(Debug, Default)]
struct Slot {
    window: VecDeque<QualityOutcome>,
    window_totals: QualityTotals,
    lifetime: QualityTotals,
    ewma_hit: Option<f64>,
    ewma_precision: Option<f64>,
    ph_hit: PageHinkley,
    ph_precision: PageHinkley,
}

impl Slot {
    fn push(&mut self, o: QualityOutcome, window: usize) {
        self.window.push_back(o);
        self.window_totals.add(&o);
        self.lifetime.add(&o);
        if self.window.len() > window {
            let old = self.window.pop_front().expect("window non-empty");
            self.window_totals.sub(&old);
        }
    }
}

/// Per-tenant template-mix divergence state: a recent window whose
/// overflow feeds a trailing baseline window.
#[derive(Debug, Default)]
struct MixState {
    recent: VecDeque<&'static str>,
    recent_counts: BTreeMap<&'static str, u64>,
    baseline: VecDeque<&'static str>,
    baseline_counts: BTreeMap<&'static str, u64>,
}

impl MixState {
    fn push(&mut self, template: &'static str, recent_cap: usize, baseline_cap: usize) {
        self.recent.push_back(template);
        *self.recent_counts.entry(template).or_insert(0) += 1;
        if self.recent.len() > recent_cap {
            let spill = self.recent.pop_front().expect("recent non-empty");
            dec(&mut self.recent_counts, spill);
            self.baseline.push_back(spill);
            *self.baseline_counts.entry(spill).or_insert(0) += 1;
            if self.baseline.len() > baseline_cap {
                let old = self.baseline.pop_front().expect("baseline non-empty");
                dec(&mut self.baseline_counts, old);
            }
        }
    }

    fn baseline_full(&self, baseline_cap: usize) -> bool {
        self.baseline.len() >= baseline_cap
    }

    /// Total-variation distance between the recent and baseline template
    /// distributions; 0.0 when either window is empty.
    fn divergence(&self) -> f64 {
        if self.recent.is_empty() || self.baseline.is_empty() {
            return 0.0;
        }
        let rn = self.recent.len() as f64;
        let bn = self.baseline.len() as f64;
        let mut tv = 0.0;
        let keys: std::collections::BTreeSet<&'static str> = self
            .recent_counts
            .keys()
            .chain(self.baseline_counts.keys())
            .copied()
            .collect();
        for k in keys {
            let p = *self.recent_counts.get(k).unwrap_or(&0) as f64 / rn;
            let q = *self.baseline_counts.get(k).unwrap_or(&0) as f64 / bn;
            tv += (p - q).abs();
        }
        0.5 * tv
    }
}

fn dec(counts: &mut BTreeMap<&'static str, u64>, key: &'static str) {
    let c = counts.get_mut(key).expect("count tracked");
    *c -= 1;
    if *c == 0 {
        counts.remove(key);
    }
}

/// Per-tenant drift bookkeeping: mix detector, alert counter, cooldown.
#[derive(Debug, Default)]
struct TenantState {
    mix: MixState,
    observations: u64,
    alerts: u64,
    last_alert_us: Option<u64>,
    last_alert_kind: Option<DriftKind>,
    /// Observations since the last alert (u64::MAX before any alert).
    since_alert: u64,
}

/// The streaming quality tracker. Not internally synchronized — the server
/// owns one behind whatever sharing it needs (`Arc<Mutex<_>>` when the
/// frontend health route reads it concurrently).
#[derive(Debug)]
pub struct QualityTracker {
    cfg: QualityConfig,
    slots: BTreeMap<(u32, &'static str), Slot>,
    tenants: BTreeMap<u32, TenantState>,
}

impl Default for QualityTracker {
    fn default() -> QualityTracker {
        QualityTracker::new(QualityConfig::default())
    }
}

impl QualityTracker {
    pub fn new(cfg: QualityConfig) -> QualityTracker {
        QualityTracker {
            cfg,
            slots: BTreeMap::new(),
            tenants: BTreeMap::new(),
        }
    }

    pub fn config(&self) -> &QualityConfig {
        &self.cfg
    }

    /// Feed one served-admission outcome. Updates windows, EWMAs and
    /// detectors; emits `quality.observe` (and `drift.alert` on any alert)
    /// trace instants on the [`tid::QUALITY`] track and refreshes the
    /// labeled metric series. Returns the alerts raised by this
    /// observation (usually empty).
    pub fn observe(
        &mut self,
        tenant: u32,
        template: &'static str,
        outcome: QualityOutcome,
        now_us: u64,
        rec: &mut Recorder,
    ) -> Vec<DriftAlert> {
        let cfg = self.cfg.clone();
        let slot = self.slots.entry((tenant, template)).or_default();
        slot.push(outcome, cfg.window);

        // EWMA the per-outcome signals; precision only moves when the
        // admission actually issued prefetches (no signal otherwise).
        let hit = outcome.hit_rate();
        let eh = match slot.ewma_hit {
            None => hit,
            Some(prev) => cfg.ewma_alpha * hit + (1.0 - cfg.ewma_alpha) * prev,
        };
        slot.ewma_hit = Some(eh);
        let hit_fired = outcome.demand_reads() > 0
            && slot
                .ph_hit
                .update(eh, cfg.ph_delta, cfg.ph_lambda, cfg.ph_min_samples);
        let mut precision_fired = false;
        if outcome.prefetch_issued > 0 {
            let prec = outcome.prefetch_precision();
            let ep = match slot.ewma_precision {
                None => prec,
                Some(prev) => cfg.ewma_alpha * prec + (1.0 - cfg.ewma_alpha) * prev,
            };
            slot.ewma_precision = Some(ep);
            precision_fired =
                slot.ph_precision
                    .update(ep, cfg.ph_delta, cfg.ph_lambda, cfg.ph_min_samples);
        }
        let win = slot.window_totals;

        let ten = self.tenants.entry(tenant).or_insert_with(|| TenantState {
            since_alert: u64::MAX,
            ..TenantState::default()
        });
        ten.observations += 1;
        ten.since_alert = ten.since_alert.saturating_add(1);
        ten.mix.push(template, cfg.mix_recent, cfg.mix_baseline);
        let mix_score = ten.mix.divergence();
        let mix_fired = ten.mix.baseline_full(cfg.mix_baseline) && mix_score >= cfg.mix_threshold;

        // Trace the observation on the dedicated quality track.
        rec.declare_track(Track::virt(tid::QUALITY), || "quality".to_owned());
        rec.instant(
            Track::virt(tid::QUALITY),
            "quality",
            "quality.observe",
            now_us,
            &[
                ("tenant", tenant as u64),
                ("hit_e6", e6(win.hit_rate())),
                ("precision_e6", e6(win.prefetch_precision())),
                ("recall_e6", e6(win.prefetch_recall())),
                ("mix_e6", e6(mix_score)),
                ("wait_us", outcome.wait_us),
            ],
        );
        rec.add("quality.observations", 1);

        // Collect alerts behind the per-tenant cooldown.
        let mut alerts = Vec::new();
        if ten.since_alert >= cfg.alert_cooldown {
            for (fired, kind, score) in [
                (mix_fired, DriftKind::TemplateMix, mix_score),
                (hit_fired, DriftKind::HitRate, cfg.ph_lambda),
                (precision_fired, DriftKind::Precision, cfg.ph_lambda),
            ] {
                if fired {
                    alerts.push(DriftAlert {
                        tenant,
                        kind,
                        score,
                        at_us: now_us,
                    });
                    break; // one alert per observation; cooldown starts now
                }
            }
        }
        for a in &alerts {
            ten.alerts += 1;
            ten.last_alert_us = Some(a.at_us);
            ten.last_alert_kind = Some(a.kind);
            ten.since_alert = 0;
            rec.instant(
                Track::virt(tid::QUALITY),
                "quality",
                "drift.alert",
                a.at_us,
                &[
                    ("tenant", a.tenant as u64),
                    ("kind", a.kind.code()),
                    ("score_e6", e6(a.score)),
                    ("count", ten.alerts),
                ],
            );
            rec.add("drift.alerts", 1);
            // A drift alert is a flight-recorder anomaly trigger: dump the
            // black box while the evidence is still in the ring.
            rec.trigger_flight("drift.alert", a.at_us);
        }

        // Refresh the labeled series (cheap: one BTreeMap insert each).
        if rec.is_enabled() {
            let t = tenant.to_string();
            let labels: [(&str, &str); 2] = [("tenant", &t), ("template", template)];
            rec.set_labeled("quality.hit_rate_e6", &labels, e6(win.hit_rate()));
            rec.set_labeled(
                "quality.prefetch_precision_e6",
                &labels,
                e6(win.prefetch_precision()),
            );
            rec.set_labeled(
                "quality.prefetch_recall_e6",
                &labels,
                e6(win.prefetch_recall()),
            );
            rec.set_labeled("quality.mean_wait_us", &labels, win.mean_wait_us());
            let tlabel: [(&str, &str); 1] = [("tenant", &t)];
            rec.set_labeled("drift.mix_divergence_e6", &tlabel, e6(mix_score));
            rec.set_labeled(
                "drift.alerts",
                &tlabel,
                self.tenants.get(&tenant).map(|t| t.alerts).unwrap_or(0),
            );
        }
        alerts
    }

    /// Raise a drift alert unconditionally — an operator drill (the
    /// `serve_demo --force-drift` knob, the CI anomaly smoke) that
    /// exercises the real alert path end to end: the `drift.alert` trace
    /// instant, the `drift.alerts` counter and labeled series, per-tenant
    /// cooldown bookkeeping, and the flight-recorder dump trigger. The
    /// alert is [`DriftKind::Drill`] so dashboards can tell it from a
    /// detector firing.
    pub fn force_alert(&mut self, tenant: u32, now_us: u64, rec: &mut Recorder) -> DriftAlert {
        let ten = self.tenants.entry(tenant).or_insert_with(|| TenantState {
            since_alert: u64::MAX,
            ..TenantState::default()
        });
        ten.observations += 1;
        ten.alerts += 1;
        ten.last_alert_us = Some(now_us);
        ten.last_alert_kind = Some(DriftKind::Drill);
        ten.since_alert = 0;
        let alerts = ten.alerts;
        rec.declare_track(Track::virt(tid::QUALITY), || "quality".to_owned());
        rec.instant(
            Track::virt(tid::QUALITY),
            "quality",
            "drift.alert",
            now_us,
            &[
                ("tenant", tenant as u64),
                ("kind", DriftKind::Drill.code()),
                ("score_e6", 0),
                ("count", alerts),
            ],
        );
        rec.add("drift.alerts", 1);
        if rec.is_enabled() {
            let t = tenant.to_string();
            let tlabel: [(&str, &str); 1] = [("tenant", &t)];
            rec.set_labeled("drift.alerts", &tlabel, alerts);
        }
        rec.trigger_flight("drift.alert", now_us);
        DriftAlert {
            tenant,
            kind: DriftKind::Drill,
            score: 0.0,
            at_us: now_us,
        }
    }

    /// Windowed totals for a `(tenant, template)` slot.
    pub fn window(&self, tenant: u32, template: &str) -> Option<QualityTotals> {
        self.slots
            .iter()
            .find(|((t, tpl), _)| *t == tenant && *tpl == template)
            .map(|(_, s)| s.window_totals)
    }

    /// Lifetime totals for a `(tenant, template)` slot.
    pub fn lifetime(&self, tenant: u32, template: &str) -> Option<QualityTotals> {
        self.slots
            .iter()
            .find(|((t, tpl), _)| *t == tenant && *tpl == template)
            .map(|(_, s)| s.lifetime)
    }

    /// Lifetime totals folded over every template of one tenant (zeros
    /// when the tenant never served — NaN-free by construction).
    pub fn tenant_lifetime(&self, tenant: u32) -> QualityTotals {
        let mut t = QualityTotals::default();
        for ((ten, _), s) in &self.slots {
            if *ten == tenant {
                t.merge(&s.lifetime);
            }
        }
        t
    }

    /// Lifetime totals folded over all tenants.
    pub fn global_lifetime(&self) -> QualityTotals {
        let mut t = QualityTotals::default();
        for s in self.slots.values() {
            t.merge(&s.lifetime);
        }
        t
    }

    /// Tenants that produced at least one observation, ascending.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.tenants.keys().copied().collect()
    }

    /// Monotone drift-alert count for a tenant.
    pub fn alerts(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map(|t| t.alerts).unwrap_or(0)
    }

    /// Total drift alerts across all tenants.
    pub fn total_alerts(&self) -> u64 {
        self.tenants.values().map(|t| t.alerts).sum()
    }

    /// Virtual timestamp of the last alert for a tenant, if any.
    pub fn last_alert_us(&self, tenant: u32) -> Option<u64> {
        self.tenants.get(&tenant).and_then(|t| t.last_alert_us)
    }

    /// Current template-mix divergence score for a tenant (0.0 unknown).
    pub fn mix_divergence(&self, tenant: u32) -> f64 {
        self.tenants
            .get(&tenant)
            .map(|t| t.mix.divergence())
            .unwrap_or(0.0)
    }

    /// The `/t/<tenant>/health` JSON body: current windows per template,
    /// drift scores, the last-alert instant, plus the registry model
    /// version and frontend accepted/shed/rejected counts when the caller
    /// has them. Hand-rolled, integer-only (rates as `*_e6`), keys sorted
    /// — deterministic for a given tracker state.
    pub fn health_json(
        &self,
        tenant: u32,
        model_version: Option<u64>,
        frontend: Option<(u64, u64, u64)>,
    ) -> String {
        let ten = self.tenants.get(&tenant);
        let mut out = String::from("{\"drift\":{\"alerts\":");
        out.push_str(&self.alerts(tenant).to_string());
        out.push_str(",\"last_alert_kind\":");
        match ten.and_then(|t| t.last_alert_kind) {
            Some(k) => {
                out.push('"');
                out.push_str(k.name());
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"last_alert_us\":");
        match self.last_alert_us(tenant) {
            Some(us) => out.push_str(&us.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"mix_divergence_e6\":");
        out.push_str(&e6(self.mix_divergence(tenant)).to_string());
        out.push_str("},\"frontend\":");
        match frontend {
            Some((accepted, shed, rejected)) => {
                out.push_str("{\"accepted\":");
                out.push_str(&accepted.to_string());
                out.push_str(",\"rejected\":");
                out.push_str(&rejected.to_string());
                out.push_str(",\"shed\":");
                out.push_str(&shed.to_string());
                out.push_str(",\"shed_rate_e6\":");
                out.push_str(&e6(ratio(shed, accepted + shed)).to_string());
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"model_version\":");
        match model_version {
            Some(v) => out.push_str(&v.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"observations\":");
        out.push_str(&ten.map(|t| t.observations).unwrap_or(0).to_string());
        out.push_str(",\"templates\":[");
        let mut first = true;
        for ((t, template), slot) in &self.slots {
            if *t != tenant {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"template\":\"");
            crate::snapshot::escape_into(&mut out, template);
            out.push_str("\",\"window\":{\"hit_rate_e6\":");
            let w = slot.window_totals;
            out.push_str(&e6(w.hit_rate()).to_string());
            out.push_str(",\"mean_wait_us\":");
            out.push_str(&w.mean_wait_us().to_string());
            out.push_str(",\"outcomes\":");
            out.push_str(&w.outcomes.to_string());
            out.push_str(",\"prefetch_f1_e6\":");
            out.push_str(&e6(w.prefetch_f1()).to_string());
            out.push_str(",\"prefetch_precision_e6\":");
            out.push_str(&e6(w.prefetch_precision()).to_string());
            out.push_str(",\"prefetch_recall_e6\":");
            out.push_str(&e6(w.prefetch_recall()).to_string());
            out.push_str("},\"ewma_hit_rate_e6\":");
            out.push_str(&e6(slot.ewma_hit.unwrap_or(0.0)).to_string());
            out.push_str(",\"ph_hit_score_e6\":");
            out.push_str(&e6(slot.ph_hit.score()).to_string());
            out.push_str(",\"ph_precision_score_e6\":");
            out.push_str(&e6(slot.ph_precision.score()).to_string());
            out.push('}');
        }
        out.push_str("],\"tenant\":");
        out.push_str(&tenant.to_string());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(hits: u64, misses: u64, issued: u64, useful: u64, wait: u64) -> QualityOutcome {
        QualityOutcome {
            hits,
            os_copies: misses / 2,
            disk_reads: misses - misses / 2,
            prefetch_issued: issued,
            prefetch_useful: useful,
            prefetch_wasted: issued.saturating_sub(useful),
            wait_us: wait,
        }
    }

    #[test]
    fn windowed_totals_match_batch_over_tail() {
        let cfg = QualityConfig {
            window: 4,
            ..QualityConfig::default()
        };
        let mut t = QualityTracker::new(cfg);
        let mut rec = Recorder::disabled();
        let outs: Vec<QualityOutcome> = (0..10)
            .map(|i| outcome(i, 10 - i, i + 1, i / 2, 5 * i))
            .collect();
        for (i, o) in outs.iter().enumerate() {
            t.observe(0, "query.replay.T18", *o, i as u64, &mut rec);
        }
        let win = t.window(0, "query.replay.T18").expect("slot exists");
        let batch = batch_totals(&outs[6..]);
        assert_eq!(win, batch);
        assert_eq!(win.hit_rate(), batch.hit_rate());
        assert_eq!(win.prefetch_precision(), batch.prefetch_precision());
        assert_eq!(win.prefetch_recall(), batch.prefetch_recall());
        assert_eq!(
            t.lifetime(0, "query.replay.T18").unwrap(),
            batch_totals(&outs)
        );
    }

    #[test]
    fn empty_and_zero_slots_are_nan_free() {
        let t = QualityTracker::default();
        assert!(t.window(3, "x").is_none());
        let z = t.tenant_lifetime(3);
        assert_eq!(z.hit_rate(), 0.0);
        assert_eq!(z.prefetch_precision(), 0.0);
        assert_eq!(z.prefetch_recall(), 0.0);
        assert_eq!(z.prefetch_f1(), 0.0);
        assert_eq!(z.mean_wait_us(), 0);
        let zero = QualityOutcome::default();
        assert_eq!(zero.hit_rate(), 0.0);
        assert_eq!(zero.prefetch_precision(), 0.0);
    }

    #[test]
    fn stationary_cyclic_mix_never_alerts() {
        let mut t = QualityTracker::default();
        let mut rec = Recorder::enabled();
        let cycle = ["a", "b", "c", "d"];
        for i in 0..400u64 {
            let tpl = cycle[(i % 4) as usize];
            let alerts = t.observe(1, tpl, outcome(9, 1, 4, 3, 10), i, &mut rec);
            assert!(alerts.is_empty(), "stationary alert at {i}: {alerts:?}");
        }
        assert_eq!(t.total_alerts(), 0);
        assert_eq!(rec.event_count("drift.alert"), 0);
        assert_eq!(t.mix_divergence(1), 0.0);
        assert_eq!(rec.event_count("quality.observe"), 400);
    }

    #[test]
    fn mix_rotation_alerts_within_recent_window() {
        let cfg = QualityConfig::default();
        let bound = cfg.mix_recent as u64 * 2;
        let mut t = QualityTracker::new(cfg.clone());
        let mut rec = Recorder::enabled();
        let pre = ["a", "b", "c", "d"];
        let post = ["e", "f", "g", "h"];
        let shift = 100u64;
        let mut first_alert = None;
        for i in 0..shift + 64 {
            let tpl = if i < shift {
                pre[(i % 4) as usize]
            } else {
                post[(i % 4) as usize]
            };
            let alerts = t.observe(2, tpl, outcome(9, 1, 4, 3, 10), i, &mut rec);
            if first_alert.is_none() {
                if let Some(a) = alerts.first() {
                    assert_eq!(a.kind, DriftKind::TemplateMix);
                    first_alert = Some(i);
                }
            }
        }
        let at = first_alert.expect("rotation must raise a drift alert");
        assert!(
            at >= shift && at - shift <= bound,
            "alert at {at}, shift {shift}, bound {bound}"
        );
        assert!(t.alerts(2) >= 1);
        assert!(t.last_alert_us(2).is_some());
        assert!(rec.event_count("drift.alert") >= 1);
        assert!(rec.counter("drift.alerts") >= 1);
    }

    #[test]
    fn page_hinkley_detects_sustained_hit_rate_drop() {
        let mut t = QualityTracker::default();
        let mut rec = Recorder::enabled();
        // Good regime, then hit rate collapses on a single template (so the
        // mix detector stays silent and PH must be the one that fires).
        let mut fired = None;
        for i in 0..300u64 {
            let o = if i < 150 {
                outcome(10, 0, 4, 4, 10)
            } else {
                outcome(0, 10, 4, 4, 10)
            };
            let alerts = t.observe(0, "only", o, i, &mut rec);
            if fired.is_none() {
                if let Some(a) = alerts.first() {
                    fired = Some((i, a.kind));
                }
            }
        }
        let (at, kind) = fired.expect("hit-rate collapse must alert");
        assert_eq!(kind, DriftKind::HitRate);
        assert!(at >= 150, "alert at {at} precedes the drop");
        assert!(at < 250, "PH too slow: alert at {at}");
    }

    #[test]
    fn cooldown_suppresses_alert_storms() {
        let cfg = QualityConfig {
            alert_cooldown: 50,
            ..QualityConfig::default()
        };
        let mut t = QualityTracker::new(cfg);
        let mut rec = Recorder::enabled();
        // Permanently rotated mix: divergence stays 1.0 after the shift.
        for i in 0..200u64 {
            let tpl = if i < 100 { "a" } else { "b" };
            t.observe(0, tpl, outcome(9, 1, 0, 0, 0), i, &mut rec);
        }
        // 100 post-shift observations with a 50-observation cooldown can
        // raise at most 2 alerts.
        assert!(t.alerts(0) <= 2, "alert storm: {}", t.alerts(0));
        assert!(t.alerts(0) >= 1);
    }

    #[test]
    fn force_alert_drill_fires_the_full_alert_path() {
        let mut t = QualityTracker::default();
        let mut rec = Recorder::enabled();
        let shared = crate::flight::SharedFlight::new();
        rec.set_flight_publisher(shared.clone());
        let a = t.force_alert(7, 500, &mut rec);
        assert_eq!(a.kind, DriftKind::Drill);
        assert_eq!(a.tenant, 7);
        assert_eq!(t.alerts(7), 1);
        assert_eq!(t.last_alert_us(7), Some(500));
        assert_eq!(rec.event_count("drift.alert"), 1);
        assert_eq!(rec.counter("drift.alerts"), 1);
        assert_eq!(rec.counter("flight.triggers"), 1);
        let dump = shared.get().expect("drill publishes a flight dump");
        assert_eq!(dump.reason, "drift.alert");
        assert!(dump.trace_json.contains("\"drift.alert\""));
        // The drill is visible (and distinguishable) in the health body.
        let j = t.health_json(7, None, None);
        assert!(j.contains("\"last_alert_kind\":\"drill\""), "{j}");
    }

    #[test]
    fn health_json_shape() {
        let mut t = QualityTracker::default();
        let mut rec = Recorder::enabled();
        for i in 0..8u64 {
            t.observe(
                1,
                "query.replay.T18",
                outcome(8, 2, 4, 3, 20),
                10 * i,
                &mut rec,
            );
        }
        let j = t.health_json(1, Some(3), Some((8, 2, 0)));
        assert!(j.starts_with("{\"drift\":{\"alerts\":0"));
        assert!(j.contains("\"model_version\":3"));
        assert!(j.contains("\"tenant\":1"));
        assert!(j.contains("\"observations\":8"));
        assert!(j.contains("\"template\":\"query.replay.T18\""));
        assert!(j.contains("\"hit_rate_e6\":800000"));
        assert!(j.contains("\"prefetch_precision_e6\":750000"));
        assert!(j.contains("\"accepted\":8"));
        assert!(j.contains("\"shed_rate_e6\":200000"));
        assert!(j.ends_with("\"tenant\":1}"));
        // Unknown tenant: zeros and nulls, never a panic.
        let empty = t.health_json(9, None, None);
        assert!(empty.contains("\"alerts\":0"));
        assert!(empty.contains("\"model_version\":null"));
        assert!(empty.contains("\"frontend\":null"));
        assert!(empty.contains("\"templates\":[]"));
        // Labeled series got refreshed for the serving tenant.
        let snap = rec.snapshot();
        assert_eq!(
            snap.labeled(
                "quality.hit_rate_e6",
                &[("template", "query.replay.T18"), ("tenant", "1")]
            ),
            800_000
        );
        assert_eq!(snap.labeled("drift.alerts", &[("tenant", "1")]), 0);
    }

    #[test]
    fn quality_track_is_declared_and_virtual() {
        let mut t = QualityTracker::default();
        let mut rec = Recorder::enabled();
        t.observe(0, "x", outcome(5, 5, 2, 1, 7), 42, &mut rec);
        let virt = rec.virtual_trace_json();
        assert!(virt.contains("quality.observe"));
        assert!(virt.contains("\"quality\""));
        let ev = rec
            .events()
            .iter()
            .find(|e| e.name == "quality.observe")
            .expect("observe event");
        assert_eq!(ev.track, Track::virt(tid::QUALITY));
        assert_eq!(ev.ts_us, 42);
    }
}
