//! Training-telemetry capture for the model fleet.
//!
//! The per-object classifiers train on pool workers deep inside
//! `pythia-core`, with no `Recorder` in reach (same constraint as
//! [`crate::wall`]). When capture is on, the training loop appends one
//! [`EpochRec`] per epoch — mean minibatch loss, mean gradient L2 norm,
//! step count, wall timing — to a global mutex-guarded buffer, and held-out
//! evaluation appends [`F1Rec`]s. The recorder's owner drains the buffer
//! into `WALL_PID` spans/instants plus counters and histograms afterwards
//! ([`crate::Recorder::absorb_train_telemetry`]).
//!
//! Float statistics are carried as fixed-point micros (`value × 1e6`,
//! saturating at 0) because trace args and histograms are `u64`.
//!
//! Which model a record belongs to is a thread-local *context* `(worker,
//! model)` set by the worker pool before it runs a training closure — the
//! classifier itself never learns its fleet position.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One completed training epoch of one classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRec {
    /// `true` when this epoch ran under `refine` (incremental retraining)
    /// rather than from-scratch training.
    pub refine: bool,
    /// Pool worker the epoch ran on (trace `tid` in the wall process).
    pub worker: u32,
    /// Fleet work-item index of the model being trained (from the context).
    pub model: u64,
    /// Epoch index within this `train` call.
    pub epoch: u32,
    /// Optimizer steps (minibatches) in the epoch.
    pub steps: u32,
    /// Mean minibatch loss × 1e6.
    pub loss_e6: u64,
    /// Mean global gradient L2 norm × 1e6.
    pub grad_norm_e6: u64,
    /// Wall start, microseconds since the [`crate::wall`] epoch.
    pub start_us: u64,
    pub dur_us: u64,
}

/// One held-out F1 evaluation of a trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F1Rec {
    /// Which held-out query was scored.
    pub query: u64,
    /// F1 × 1e6.
    pub f1_e6: u64,
    /// Wall timestamp, microseconds since the [`crate::wall`] epoch.
    pub at_us: u64,
}

/// A buffered telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainRec {
    Epoch(EpochRec),
    HeldoutF1(F1Rec),
}

/// Wall-process tid the recorder places held-out F1 instants on — far
/// above any plausible worker index, so it never collides with the
/// `nn-worker-N` tracks.
pub const EVAL_TID: u32 = 9_999;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDS: Mutex<Vec<TrainRec>> = Mutex::new(Vec::new());

thread_local! {
    /// `(worker, model)` the current thread is training for.
    static CONTEXT: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
}

/// Turn training-telemetry capture on or off process-wide. Off by default;
/// the training loop pays one relaxed atomic load per `train` call when off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether capture is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tag the current thread's upcoming training work as `(worker, model)`.
/// The pool calls this before dispatching each work item.
pub fn set_context(worker: u32, model: u64) {
    CONTEXT.with(|c| c.set((worker, model)));
}

/// The current thread's `(worker, model)` tag (`(0, 0)` if never set).
pub fn context() -> (u32, u64) {
    CONTEXT.with(|c| c.get())
}

/// Convert a (non-negative) float statistic to fixed-point micros.
pub fn to_e6(value: f64) -> u64 {
    if value.is_finite() && value > 0.0 {
        (value * 1e6).round() as u64
    } else {
        0
    }
}

/// Buffer one epoch record (no-op unless [`enabled`]).
pub fn record_epoch(rec: EpochRec) {
    if !enabled() {
        return;
    }
    RECORDS
        .lock()
        .expect("train telemetry buffer poisoned")
        .push(TrainRec::Epoch(rec));
}

/// Buffer one held-out F1 record (no-op unless [`enabled`]).
pub fn record_f1(query: u64, f1_e6: u64) {
    if !enabled() {
        return;
    }
    RECORDS
        .lock()
        .expect("train telemetry buffer poisoned")
        .push(TrainRec::HeldoutF1(F1Rec {
            query,
            f1_e6,
            at_us: crate::wall::now_us(),
        }));
}

/// Take every buffered record, leaving the buffer empty.
pub fn drain() -> Vec<TrainRec> {
    std::mem::take(&mut *RECORDS.lock().expect("train telemetry buffer poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the buffer and flag are process-global (same shape as
    // the wall-task capture test).
    #[test]
    fn capture_is_gated_context_is_thread_local_and_drain_empties() {
        let rec = EpochRec {
            refine: false,
            worker: 1,
            model: 7,
            epoch: 0,
            steps: 4,
            loss_e6: 693_147,
            grad_norm_e6: 2_500_000,
            start_us: 10,
            dur_us: 3,
        };
        drain();
        record_epoch(rec); // disabled → dropped
        record_f1(0, 900_000);
        assert!(drain().is_empty());

        set_enabled(true);
        set_context(3, 42);
        assert_eq!(context(), (3, 42));
        let other = std::thread::spawn(context).join().unwrap();
        assert_eq!(other, (0, 0), "context must not leak across threads");
        record_epoch(rec);
        record_f1(5, 812_500);
        set_enabled(false);
        record_epoch(rec); // disabled again → dropped

        let got = drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], TrainRec::Epoch(rec));
        match got[1] {
            TrainRec::HeldoutF1(f) => {
                assert_eq!((f.query, f.f1_e6), (5, 812_500));
            }
            other => panic!("expected F1 record, got {other:?}"),
        }
        assert!(drain().is_empty());

        assert_eq!(to_e6(0.6931), 693_100);
        assert_eq!(to_e6(0.0), 0);
        assert_eq!(to_e6(-1.0), 0);
        assert_eq!(to_e6(f64::NAN), 0);
    }
}
