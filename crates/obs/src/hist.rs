//! Fixed-bucket histograms: log₂ buckets, O(1) record, no allocation after
//! construction. Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values
//! in `[2^(i-1), 2^i)`. Percentiles are estimated as the upper bound of the
//! bucket containing the requested rank (clamped to the observed max), which
//! is exact to within one power of two — plenty for latency attribution.

/// Number of buckets: value 0 plus one bucket per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed log₂-bucket histogram of `u64` values (typically microseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Summary statistics of one histogram (what the metrics snapshot exports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the rank, clamped to the observed max. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 64 holds values in [2^63, u64::MAX]; its upper bound
                // must not be computed as `1 << 64` (shift overflow).
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max).max(self.min.min(self.max));
            }
        }
        self.max
    }

    /// Median estimate ([`Histogram::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate ([`Histogram::quantile`] at 0.95).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate ([`Histogram::quantile`] at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`, bucket by bucket. Equivalent to having
    /// recorded both value streams into one histogram (sum saturates the
    /// same way [`Histogram::record`] does).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary statistics for export.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn summary_tracks_exact_min_max_count_sum() {
        let mut h = Histogram::new();
        for v in [500u64, 40, 7, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 587);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 100 values of 10 (bucket [8,16) → upper bound 15), one of 1000.
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.90), 15);
        // p100 lands in the 1000 bucket, clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn single_value_quantiles_clamp_to_it() {
        let mut h = Histogram::new();
        h.record(777);
        let s = h.summary();
        assert_eq!(s.p50, 777);
        assert_eq!(s.p99, 777);
    }

    #[test]
    fn zero_values_count() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().max, 0);
    }

    #[test]
    fn empty_histogram_quantiles_and_accessors_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!((h.p50(), h.p95(), h.p99()), (0, 0, 0));
        assert_eq!(h.quantile(1.0), 0);
        let s = h.summary();
        assert_eq!((s.min, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0));
    }

    #[test]
    fn single_bucket_quantiles_collapse_to_observed_range() {
        // All values land in bucket [8, 16); every quantile is the bucket's
        // upper bound clamped to the observed max.
        let mut h = Histogram::new();
        for v in [8u64, 9, 11, 15] {
            h.record(v);
        }
        assert_eq!((h.p50(), h.p95(), h.p99()), (15, 15, 15));
        let mut tight = Histogram::new();
        tight.record(10);
        tight.record(10);
        // Observed max below the bucket bound clamps the estimate.
        assert_eq!((tight.p50(), tight.p95(), tight.p99()), (10, 10, 10));
    }

    #[test]
    fn max_value_saturates_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // Bucket 64's upper bound cannot be computed as `1 << 64`; the
        // quantile must come back as the observed max, and the sum saturates.
        assert_eq!(h.quantile(0.5), u64::MAX);
        let s = h.summary();
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(
            (s.min, s.max, s.p50, s.p99),
            (u64::MAX, u64::MAX, u64::MAX, u64::MAX)
        );
    }

    #[test]
    fn merge_of_disjoint_histograms_matches_combined_recording() {
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        let mut combined = Histogram::new();
        for v in [1u64, 2, 3, 3] {
            low.record(v);
            combined.record(v);
        }
        for v in [1000u64, 2000, 4000] {
            high.record(v);
            combined.record(v);
        }
        low.merge(&high);
        assert_eq!(low.count(), combined.count());
        assert_eq!(low.sum(), combined.sum());
        assert_eq!(low.summary(), combined.summary());
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before, "merging in an empty histogram");
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty.summary(), before, "merging into an empty histogram");
    }
}
