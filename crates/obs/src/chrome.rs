//! Chrome trace-event JSON emission.
//!
//! The output is the Trace Event Format's "JSON Array Format": a `[` line,
//! one event object per line (comma-terminated except the last), and a `]`
//! line. Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` both
//! load it directly, and the one-event-per-line layout keeps traces
//! line-diffable — the determinism guarantee is checked by comparing the
//! emitted bytes of two same-seed runs.
//!
//! Emitted phases:
//!
//! * `M` — metadata (`process_name`, `thread_name`) for every declared track;
//! * `X` — complete spans (`ts` + `dur`);
//! * `i` — instant events (thread scope);
//! * `s` / `f` — flow arrows linking tracks (`id` pairs the endpoints; the
//!   finish end carries `"bp":"e"` so it binds to the enclosing slice).

use crate::{Event, FlowDir, Track, VIRTUAL_PID, WALL_PID};

/// Escape a string for a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

fn push_meta(lines: &mut Vec<String>, track: Track, key: &str, name: &str) {
    let mut s = String::new();
    s.push_str("{\"ph\":\"M\",\"pid\":");
    s.push_str(&track.pid.to_string());
    s.push_str(",\"tid\":");
    s.push_str(&track.tid.to_string());
    s.push_str(",\"name\":\"");
    s.push_str(key);
    s.push_str("\",\"args\":{\"name\":\"");
    escape_into(&mut s, name);
    s.push_str("\"}}");
    lines.push(s);
}

fn process_name(pid: u32) -> &'static str {
    match pid {
        VIRTUAL_PID => "pythia-virtual (sim time)",
        WALL_PID => "pythia-wall (host time)",
        _ => "pythia",
    }
}

/// Render `events` (+ track name metadata) as Chrome trace-event JSON.
/// `pid_filter` restricts the output to one process (used to export the
/// deterministic virtual-time trace on its own).
pub fn trace_json(events: &[Event], tracks: &[(Track, String)], pid_filter: Option<u32>) -> String {
    let keep = |pid: u32| pid_filter.map(|f| f == pid).unwrap_or(true);
    let mut lines: Vec<String> = Vec::new();

    // Process metadata for every pid that appears, in pid order.
    let mut pids: Vec<u32> = tracks
        .iter()
        .map(|(t, _)| t.pid)
        .chain(events.iter().map(|e| e.track.pid))
        .filter(|&p| keep(p))
        .collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        push_meta(
            &mut lines,
            Track { pid, tid: 0 },
            "process_name",
            process_name(pid),
        );
    }
    for (track, name) in tracks {
        if keep(track.pid) {
            push_meta(&mut lines, *track, "thread_name", name);
        }
    }

    for e in events {
        if !keep(e.track.pid) {
            continue;
        }
        let mut s = String::new();
        s.push_str("{\"ph\":\"");
        s.push_str(match (e.flow, e.dur_us) {
            (Some((_, FlowDir::Start)), _) => "s",
            (Some((_, FlowDir::Finish)), _) => "f",
            (None, Some(_)) => "X",
            (None, None) => "i",
        });
        s.push('"');
        if let Some((_, FlowDir::Finish)) = e.flow {
            s.push_str(",\"bp\":\"e\"");
        }
        s.push_str(",\"pid\":");
        s.push_str(&e.track.pid.to_string());
        s.push_str(",\"tid\":");
        s.push_str(&e.track.tid.to_string());
        s.push_str(",\"ts\":");
        s.push_str(&e.ts_us.to_string());
        if let Some((id, _)) = e.flow {
            s.push_str(",\"id\":");
            s.push_str(&id.to_string());
        } else if let Some(dur) = e.dur_us {
            s.push_str(",\"dur\":");
            s.push_str(&dur.to_string());
        } else {
            s.push_str(",\"s\":\"t\"");
        }
        s.push_str(",\"cat\":\"");
        escape_into(&mut s, e.cat);
        s.push_str("\",\"name\":\"");
        escape_into(&mut s, e.name);
        s.push_str("\",\"args\":");
        push_args(&mut s, &e.args);
        s.push('}');
        lines.push(s);
    }

    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 2).sum::<usize>() + 4);
    out.push_str("[\n");
    let n = lines.len();
    for (i, line) in lines.into_iter().enumerate() {
        out.push_str(&line);
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, name: &'static str, ts: u64, dur: Option<u64>) -> Event {
        Event {
            track: Track::virt(tid),
            cat: "test",
            name,
            ts_us: ts,
            dur_us: dur,
            flow: None,
            args: vec![("k", 7)],
        }
    }

    #[test]
    fn empty_trace_is_a_valid_array() {
        assert_eq!(trace_json(&[], &[], None), "[\n]\n");
    }

    #[test]
    fn span_and_instant_shapes() {
        let events = [ev(3, "s", 10, Some(5)), ev(3, "i", 12, None)];
        let tracks = [(Track::virt(3), "q0".to_owned())];
        let json = trace_json(&events, &tracks, None);
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":10,\"dur\":5,\"cat\":\"test\",\"name\":\"s\",\"args\":{\"k\":7}}"
        ));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("thread_name"));
        assert!(json.contains("process_name"));
        // Valid array: every line but the last ends with a comma.
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.first(), Some(&"["));
        assert_eq!(lines.last(), Some(&"]"));
        for l in &lines[1..lines.len() - 2] {
            assert!(l.ends_with(','), "line must be comma-terminated: {l}");
        }
        assert!(!lines[lines.len() - 2].ends_with(','));
    }

    #[test]
    fn flow_event_shapes() {
        let mut start = ev(3, "request.flow", 10, None);
        start.flow = Some((42, FlowDir::Start));
        start.args = vec![];
        let mut finish = ev(5, "request.flow", 12, None);
        finish.flow = Some((42, FlowDir::Finish));
        finish.args = vec![];
        let json = trace_json(&[start, finish], &[], None);
        assert!(
            json.contains(
                "{\"ph\":\"s\",\"pid\":1,\"tid\":3,\"ts\":10,\"id\":42,\"cat\":\"test\",\"name\":\"request.flow\",\"args\":{}}"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":5,\"ts\":12,\"id\":42,\"cat\":\"test\",\"name\":\"request.flow\",\"args\":{}}"
            ),
            "{json}"
        );
        // Flow events carry no "s":"t" scope and no "dur".
        assert!(!json.contains("\"s\":\"t\""), "{json}");
        assert!(!json.contains("\"dur\""), "{json}");
    }

    #[test]
    fn pid_filter_drops_other_processes() {
        let mut wall = ev(1, "w", 0, Some(1));
        wall.track = Track::wall(1);
        let events = [ev(1, "v", 0, Some(1)), wall];
        let json = trace_json(&events, &[], Some(VIRTUAL_PID));
        assert!(json.contains("\"name\":\"v\""));
        assert!(!json.contains("\"name\":\"w\""));
        assert!(!json.contains("pythia-wall"));
    }

    #[test]
    fn escaping_is_applied() {
        let tracks = [(Track::virt(1), "a\"b\\c\nd".to_owned())];
        let json = trace_json(&[], &tracks, None);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
