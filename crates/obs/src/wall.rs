//! Wall-clock task recording for the shared NN worker pool.
//!
//! The pool's worker closures run on scoped threads deep inside
//! `pythia_nn::pool`, far from any `Recorder`; threading a `&mut Recorder`
//! through the parallel map would serialize the workers. Instead workers
//! append to a small global ring guarded by a mutex, gated by one relaxed
//! atomic load when disabled, and the owner of a `Recorder` drains the
//! buffer into `WALL_PID` tracks afterwards
//! ([`crate::Recorder::absorb_wall_tasks`]).
//!
//! Timestamps are microseconds since a process-wide epoch (the first call to
//! [`now_us`]) — monotonic, comparable across workers, and explicitly *not*
//! deterministic across runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed task span on a pool worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallTask {
    /// Static task label (`nn.train`, `nn.infer`, ...).
    pub label: &'static str,
    /// Worker index within the pool (becomes the trace `tid`).
    pub worker: u32,
    /// Which work item the task processed (model index, batch index, ...).
    pub item: u64,
    /// Request id the task is attributed to (see [`set_request`]); 0 means
    /// unattributed.
    pub req: u64,
    pub start_us: u64,
    pub dur_us: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TASKS: Mutex<Vec<WallTask>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Ambient request attribution for pool tasks (see [`set_request`]).
static REQUEST: AtomicU64 = AtomicU64::new(0);

/// Turn wall-task capture on or off process-wide. Off by default; the pool
/// pays one relaxed atomic load per task when off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether capture is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-wide capture epoch.
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

/// Set the ambient request id that subsequently captured pool tasks are
/// attributed to (0 clears it). The serving loop brackets each request's
/// inference dispatch with `set_request(id)` / `set_request(0)`, so pool
/// workers can stamp [`WallTask::req`] via [`current_request`] without any
/// per-task plumbing. Process-wide like the rest of this module — batched
/// dispatches covering several requests are attributed to the batch head.
pub fn set_request(id: u64) {
    REQUEST.store(id, Ordering::Relaxed);
}

/// The current ambient request id (0 when unattributed).
#[inline]
pub fn current_request() -> u64 {
    REQUEST.load(Ordering::Relaxed)
}

/// Record one completed task (no-op unless [`enabled`]).
pub fn record(task: WallTask) {
    if !enabled() {
        return;
    }
    TASKS.lock().expect("wall task buffer poisoned").push(task);
}

/// Take every buffered task, leaving the buffer empty.
pub fn drain() -> Vec<WallTask> {
    std::mem::take(&mut *TASKS.lock().expect("wall task buffer poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the buffer and the enabled flag are process-global, so
    // concurrent #[test] threads would interleave. All behavior fits here.
    #[test]
    fn capture_is_gated_and_drain_empties() {
        let t = WallTask {
            label: "nn.test",
            worker: 0,
            item: 1,
            req: 0,
            start_us: 10,
            dur_us: 2,
        };
        drain(); // isolate from any earlier state
        record(t); // disabled → dropped
        assert!(drain().is_empty());

        set_enabled(true);
        record(t);
        record(WallTask { item: 2, ..t });
        set_enabled(false);
        record(WallTask { item: 3, ..t }); // disabled again → dropped
        let got = drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].item, 1);
        assert_eq!(got[1].item, 2);
        assert!(drain().is_empty());

        let a = now_us();
        let b = now_us();
        assert!(b >= a);

        // Ambient request attribution: set, observe, clear.
        assert_eq!(current_request(), 0);
        set_request(42);
        assert_eq!(current_request(), 42);
        set_request(0);
        assert_eq!(current_request(), 0);
    }
}
