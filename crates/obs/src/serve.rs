//! A zero-dependency live metrics endpoint.
//!
//! [`MetricsServer`] binds a std [`TcpListener`] on a background thread and
//! answers `GET /metrics` with the latest published
//! [`MetricsSnapshot`] rendered as Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]). The serving loop publishes through a
//! [`SharedSnapshot`] — a mutex-guarded cell the recorder's owner overwrites
//! at convenient points (per admission wave), so scrapes never contend with
//! the hot recording path.
//!
//! There is no HTTP library here on purpose: the whole protocol surface is
//! "read one request head, write one `200 text/plain` (or `404`) response,
//! close" — the same stance that keeps the rest of `pythia-obs`
//! dependency-free.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::snapshot::MetricsSnapshot;

/// The cell a serving loop publishes snapshots into and the endpoint reads
/// from. Cheap to clone (an `Arc`); cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    cell: Arc<Mutex<MetricsSnapshot>>,
}

impl SharedSnapshot {
    /// A fresh cell holding an empty snapshot.
    pub fn new() -> SharedSnapshot {
        SharedSnapshot::default()
    }

    /// Replace the published snapshot.
    pub fn publish(&self, snap: MetricsSnapshot) {
        *self.cell.lock().expect("snapshot cell poisoned") = snap;
    }

    /// The most recently published snapshot (cloned out of the cell).
    pub fn get(&self) -> MetricsSnapshot {
        self.cell.lock().expect("snapshot cell poisoned").clone()
    }
}

/// A background thread serving `GET /metrics` from a [`SharedSnapshot`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and start answering scrapes. The bound address is available via
    /// [`MetricsServer::addr`].
    pub fn start(addr: &str, shared: SharedSnapshot) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pythia-metrics".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = answer(&mut stream, &shared);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop only observes the flag on its next connection;
        // poke it so shutdown doesn't wait for an external scrape.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // Best effort: detach rather than block in drop. Explicit shutdown
        // (which joins) is preferred; tests use it.
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Read one request head and write the response. Any I/O error just drops
/// the connection — a scraper retries, and the endpoint is diagnostic.
fn answer(stream: &mut TcpStream, shared: &SharedSnapshot) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let path = read_request_path(stream)?;
    let (status, body) = match path.as_deref() {
        Some("/metrics") => ("200 OK", shared.get().to_prometheus()),
        Some("/metrics.json") => ("200 OK", shared.get().to_json()),
        _ => ("404 Not Found", String::from("try /metrics\n")),
    };
    let content_type = if path.as_deref() == Some("/metrics.json") {
        "application/json"
    } else {
        // The 0.0.4 text exposition content type Prometheus expects.
        "text/plain; version=0.0.4; charset=utf-8"
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parse the request line's path from the head of an HTTP/1.x request.
/// Returns `None` for anything that isn't a simple `GET <path> ...` line.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(2).any(|w| w == b"\r\n") || head.len() >= 8 * 1024 {
            break;
        }
    }
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_owned())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_published_snapshot_as_prometheus_text() {
        let shared = SharedSnapshot::new();
        let server = MetricsServer::start("127.0.0.1:0", shared.clone()).expect("bind");

        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        shared.publish(MetricsSnapshot {
            counters: vec![("reads.hit".into(), 41)],
            hists: vec![("server.admission_wait_us".into(), h.summary())],
            labeled: vec![("frontend.accepted".into(), vec![("tenant".into(), "0".into())], 5)],
        });

        let resp = scrape(server.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"));
        assert!(resp.contains("pythia_reads_hit 41\n"));
        assert!(resp.contains("pythia_frontend_accepted{tenant=\"0\"} 5\n"));
        assert!(resp.contains("pythia_server_admission_wait_us_count 2\n"));
        assert!(resp.contains("pythia_server_admission_wait_us{quantile=\"0.95\"}"));

        // Publishing again replaces what the next scrape sees.
        shared.publish(MetricsSnapshot {
            counters: vec![("reads.hit".into(), 42)],
            hists: vec![],
            labeled: vec![],
        });
        let resp = scrape(server.addr(), "/metrics");
        assert!(resp.contains("pythia_reads_hit 42\n"));

        let json = scrape(server.addr(), "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("{\"counters\":{\"reads.hit\":42}"));

        let missing = scrape(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }
}
