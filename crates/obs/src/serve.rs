//! A zero-dependency live metrics endpoint.
//!
//! [`MetricsServer`] binds a std [`TcpListener`] on a background thread and
//! answers `GET /metrics` with the latest published
//! [`MetricsSnapshot`] rendered as Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]). The serving loop publishes through a
//! [`SharedSnapshot`] — a mutex-guarded cell the recorder's owner overwrites
//! at convenient points (per admission wave), so scrapes never contend with
//! the hot recording path.
//!
//! Started via [`MetricsServer::start_with_debug`], the same listener also
//! serves the postmortem surface: `GET /debug/flight` returns the latest
//! anomaly-triggered flight-recorder dump (Chrome-trace JSON from a
//! [`crate::flight::SharedFlight`]; `404` until a trigger fires) and
//! `GET /debug/slow` the live top-K slow-request log (a
//! [`crate::request::SharedSlowLog`]).
//!
//! There is no HTTP library here on purpose: the whole protocol surface is
//! "read one request head, write one `200 text/plain` (or `404`) response,
//! close" — the same stance that keeps the rest of `pythia-obs`
//! dependency-free.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::snapshot::MetricsSnapshot;

/// The cell a serving loop publishes snapshots into and the endpoint reads
/// from. Cheap to clone (an `Arc`); cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    cell: Arc<Mutex<MetricsSnapshot>>,
}

impl SharedSnapshot {
    /// A fresh cell holding an empty snapshot.
    pub fn new() -> SharedSnapshot {
        SharedSnapshot::default()
    }

    /// Replace the published snapshot.
    pub fn publish(&self, snap: MetricsSnapshot) {
        *self.cell.lock().expect("snapshot cell poisoned") = snap;
    }

    /// The most recently published snapshot (cloned out of the cell).
    pub fn get(&self) -> MetricsSnapshot {
        self.cell.lock().expect("snapshot cell poisoned").clone()
    }
}

/// The debug-surface cells a [`MetricsServer`] can additionally serve:
/// `/debug/flight` (latest flight dump) and `/debug/slow` (top-K slow
/// requests). Cheap to clone; clones share the underlying cells.
#[derive(Debug, Clone, Default)]
pub struct DebugEndpoints {
    /// Latest anomaly-triggered flight-recorder dump.
    pub flight: crate::flight::SharedFlight,
    /// Live top-K slow-request log.
    pub slow: crate::request::SharedSlowLog,
}

/// A background thread serving `GET /metrics` from a [`SharedSnapshot`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and start answering scrapes. The bound address is available via
    /// [`MetricsServer::addr`].
    pub fn start(addr: &str, shared: SharedSnapshot) -> std::io::Result<MetricsServer> {
        MetricsServer::spawn(addr, shared, None)
    }

    /// [`MetricsServer::start`], additionally serving the `/debug/flight`
    /// and `/debug/slow` postmortem routes from `debug`'s shared cells.
    pub fn start_with_debug(
        addr: &str,
        shared: SharedSnapshot,
        debug: DebugEndpoints,
    ) -> std::io::Result<MetricsServer> {
        MetricsServer::spawn(addr, shared, Some(debug))
    }

    fn spawn(
        addr: &str,
        shared: SharedSnapshot,
        debug: Option<DebugEndpoints>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pythia-metrics".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = answer(&mut stream, &shared, debug.as_ref());
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop only observes the flag on its next connection;
        // poke it so shutdown doesn't wait for an external scrape.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // Best effort: detach rather than block in drop. Explicit shutdown
        // (which joins) is preferred; tests use it.
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Read one request head and write the response. Any I/O error just drops
/// the connection — a scraper retries, and the endpoint is diagnostic.
fn answer(
    stream: &mut TcpStream,
    shared: &SharedSnapshot,
    debug: Option<&DebugEndpoints>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // The 0.0.4 text exposition content type Prometheus expects.
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json";
    let path = read_request_path(stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") => ("200 OK", PROM, shared.get().to_prometheus()),
        Some("/metrics.json") => ("200 OK", JSON, shared.get().to_json()),
        Some("/debug/slow") if debug.is_some() => (
            "200 OK",
            JSON,
            debug.expect("guarded by match arm").slow.to_json(),
        ),
        Some("/debug/flight") if debug.is_some() => {
            match debug.expect("guarded by match arm").flight.get() {
                Some(dump) => ("200 OK", JSON, dump.trace_json),
                None => (
                    "404 Not Found",
                    PROM,
                    String::from("no flight dump captured yet (no anomaly trigger has fired)\n"),
                ),
            }
        }
        _ => (
            "404 Not Found",
            PROM,
            String::from("try /metrics, /metrics.json, /debug/slow or /debug/flight\n"),
        ),
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parse the request line's path from the head of an HTTP/1.x request.
/// Returns `None` for anything that isn't a simple `GET <path> ...` line.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(2).any(|w| w == b"\r\n") || head.len() >= 8 * 1024 {
            break;
        }
    }
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_owned())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_published_snapshot_as_prometheus_text() {
        let shared = SharedSnapshot::new();
        let server = MetricsServer::start("127.0.0.1:0", shared.clone()).expect("bind");

        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        shared.publish(MetricsSnapshot {
            counters: vec![("reads.hit".into(), 41)],
            hists: vec![("server.admission_wait_us".into(), h.summary())],
            labeled: vec![(
                "frontend.accepted".into(),
                vec![("tenant".into(), "0".into())],
                5,
            )],
        });

        let resp = scrape(server.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"));
        assert!(resp.contains("pythia_reads_hit 41\n"));
        assert!(resp.contains("pythia_frontend_accepted{tenant=\"0\"} 5\n"));
        assert!(resp.contains("pythia_server_admission_wait_us_count 2\n"));
        assert!(resp.contains("pythia_server_admission_wait_us{quantile=\"0.95\"}"));

        // Publishing again replaces what the next scrape sees.
        shared.publish(MetricsSnapshot {
            counters: vec![("reads.hit".into(), 42)],
            hists: vec![],
            labeled: vec![],
        });
        let resp = scrape(server.addr(), "/metrics");
        assert!(resp.contains("pythia_reads_hit 42\n"));

        let json = scrape(server.addr(), "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("{\"counters\":{\"reads.hit\":42}"));

        let missing = scrape(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        // Debug routes are absent unless started with them.
        let no_debug = scrape(server.addr(), "/debug/slow");
        assert!(no_debug.starts_with("HTTP/1.1 404"), "{no_debug}");

        server.shutdown();
    }

    #[test]
    fn serves_debug_flight_and_slow_routes() {
        use crate::flight::FlightDump;
        use crate::request::RequestBreakdown;

        let shared = SharedSnapshot::new();
        let debug = DebugEndpoints::default();
        let server =
            MetricsServer::start_with_debug("127.0.0.1:0", shared, debug.clone()).expect("bind");

        // No anomaly yet: /debug/flight is an explicit 404, /debug/slow an
        // empty log.
        let flight = scrape(server.addr(), "/debug/flight");
        assert!(flight.starts_with("HTTP/1.1 404"), "{flight}");
        assert!(flight.contains("no flight dump captured yet"), "{flight}");
        let slow = scrape(server.addr(), "/debug/slow");
        assert!(slow.starts_with("HTTP/1.1 200 OK"), "{slow}");
        assert!(slow.contains("\"count\":0"), "{slow}");

        debug.slow.offer(RequestBreakdown {
            request: 3,
            replay_us: 500,
            ..RequestBreakdown::default()
        });
        debug.flight.publish(FlightDump {
            reason: "drift.alert".to_owned(),
            trace_json: "[\n{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1,\"s\":\"t\",\"cat\":\"c\",\"name\":\"e\",\"args\":{}}\n]\n".to_owned(),
            trigger_seq: 1,
        });
        let flight = scrape(server.addr(), "/debug/flight");
        assert!(flight.starts_with("HTTP/1.1 200 OK"), "{flight}");
        assert!(flight.contains("application/json"), "{flight}");
        assert!(flight.contains("\"name\":\"e\""), "{flight}");
        let slow = scrape(server.addr(), "/debug/slow");
        assert!(slow.contains("\"request\":3"), "{slow}");
        assert!(slow.contains("\"latency_us\":500"), "{slow}");

        server.shutdown();
    }
}
