//! # pythia-obs
//!
//! Zero-dependency structured tracing and metrics for the whole
//! reproduction — the introspection layer the ROADMAP's scaling steps
//! (sharded fleets, preemptive admission, socket front-ends) are debugged
//! through.
//!
//! The central type is [`Recorder`]: a sink for
//!
//! * **counters** — monotonic named totals (`reads.hit`, `prefetch.issued`);
//! * **histograms** — fixed log₂-bucket latency distributions
//!   ([`hist::Histogram`]), so recording is O(1) with no allocation;
//! * **events** — timestamped spans and instants on named *tracks*
//!   (Chrome trace-event model: a track is a `(pid, tid)` pair).
//!
//! Two clock domains coexist in one trace:
//!
//! * [`VIRTUAL_PID`] — events stamped with the simulator's deterministic
//!   microsecond clock (`pythia-sim`'s `SimTime`). Given the same seed and a
//!   fixed inference charge these are **byte-identical across runs** —
//!   traces are diffable artifacts.
//! * [`WALL_PID`] — real wall-clock task spans from the shared NN worker
//!   pool ([`wall`]), inherently non-deterministic and therefore kept on a
//!   separate process track (and excluded from [`Recorder::virtual_trace_json`]).
//!
//! A disabled recorder (the default) is a `None`: every record call is one
//! branch and no allocation, so hot paths (the per-page-read path of the
//! replay runtime) can call it unconditionally.
//!
//! Export formats:
//!
//! * [`Recorder::chrome_trace_json`] — Chrome trace-event JSON (an array,
//!   one event per line), loadable in Perfetto (<https://ui.perfetto.dev>)
//!   or `chrome://tracing`.
//! * [`Recorder::snapshot`] → [`snapshot::MetricsSnapshot`] — counters and
//!   histogram summaries as deterministic JSON, merged into
//!   `perf_snapshot`'s `BENCH_nn.json`, and as Prometheus text exposition
//!   ([`snapshot::MetricsSnapshot::to_prometheus`]) behind the live
//!   [`serve::MetricsServer`] endpoint.
//!
//! Two more capture channels feed a recorder after the fact: [`wall`]
//! (worker-pool task spans) and [`train`] (per-epoch training telemetry +
//! held-out F1), both drained via `absorb_*` methods. [`diff`] reduces an
//! exported trace back into a structural summary so CI can gate on
//! virtual-trace drift.
//!
//! Independently of the enabled/disabled state, every recorder mirrors the
//! last N events into an always-on fixed-memory [`flight::FlightRing`] —
//! the black-box flight recorder. Anomaly triggers
//! ([`Recorder::trigger_flight`]: drift alerts, shed bursts, slow requests)
//! dump the ring as a loadable Chrome trace to a [`flight::SharedFlight`]
//! cell, served at `/debug/flight`. [`request`] carries the request
//! identity (`RequestId`, per-request latency breakdowns, the `/debug/slow`
//! top-K log) that the serving loop's `request.*` span trees are built on.

pub mod chrome;
pub mod diff;
pub mod flight;
pub mod hist;
pub mod quality;
pub mod request;
pub mod serve;
pub mod snapshot;
pub mod train;
pub mod wall;

use std::collections::BTreeSet;

use hist::Histogram;
use snapshot::MetricsSnapshot;

/// Process id for deterministic virtual-time tracks.
pub const VIRTUAL_PID: u32 = 1;
/// Process id for wall-clock tracks (NN worker pool).
pub const WALL_PID: u32 = 2;

/// Well-known thread ids within [`VIRTUAL_PID`]. Per-entity tracks are
/// allocated as `BASE + index`; the bases are spaced far apart and the
/// allocators are monotone, so collisions would need ~10⁵ entities of one
/// kind in a single trace.
pub mod tid {
    /// The serving loop's admission track.
    pub const SERVER: u32 = 0;
    /// Buffer-manager-wide events (evictions of unused prefetched pages).
    pub const BUFFER: u32 = 1;
    /// Streaming quality telemetry: `quality.observe` / `drift.alert`
    /// instants emitted by [`crate::quality::QualityTracker`].
    pub const QUALITY: u32 = 2;
    /// Flight-recorder trigger instants (`flight.trigger`).
    pub const FLIGHT: u32 = 3;
    /// `IO_BASE + lane` — one track per async I/O worker lane.
    pub const IO_BASE: u32 = 10;
    /// `QUERY_BASE + n` — one track per replayed query (monotone counter).
    pub const QUERY_BASE: u32 = 1_000;
    /// `PREFETCH_BASE + stream` — one track per AIO prefetcher stream.
    pub const PREFETCH_BASE: u32 = 1_000_000;
    /// `REQUEST_BASE + request id` — one track per served request's
    /// `request.*` span tree ([`crate::request::request_track`]).
    pub const REQUEST_BASE: u32 = 2_000_000;
}

/// One timeline in the trace: a Chrome trace-event `(pid, tid)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    pub pid: u32,
    pub tid: u32,
}

impl Track {
    /// A track in the deterministic virtual-time process.
    pub const fn virt(tid: u32) -> Track {
        Track {
            pid: VIRTUAL_PID,
            tid,
        }
    }

    /// A track in the wall-clock process.
    pub const fn wall(tid: u32) -> Track {
        Track { pid: WALL_PID, tid }
    }
}

/// Which end of a flow arrow a flow event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDir {
    /// The arrow's origin (Chrome phase `s`).
    Start,
    /// The arrow's destination (Chrome phase `f`, binding point `e`).
    Finish,
}

/// One recorded trace event. Spans carry a duration; instants do not.
/// Arguments are `(key, value)` pairs; keys are static so recording never
/// allocates strings on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub track: Track,
    /// Chrome trace category (groups related events in the UI).
    pub cat: &'static str,
    pub name: &'static str,
    /// Event timestamp (span start for spans), in microseconds.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// `Some((id, dir))` marks a flow event — an arrow endpoint linking
    /// tracks. Flow events have no duration; `dur_us` is ignored for them.
    pub flow: Option<(u64, FlowDir)>,
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// Track metadata in declaration order: `(track, human name)`.
    tracks: Vec<(Track, String)>,
    declared: BTreeSet<Track>,
    counters: std::collections::BTreeMap<&'static str, u64>,
    hists: std::collections::BTreeMap<&'static str, Histogram>,
    /// Labeled gauge/counter series: `(name, sorted label pairs) -> value`.
    /// Unlike plain counters these are *set* (last write wins), so callers
    /// can export windowed rates without delta bookkeeping.
    labeled: std::collections::BTreeMap<(&'static str, Vec<(String, String)>), u64>,
}

/// The recording sink threaded through the stack. Disabled by default:
/// every method on a disabled recorder is a single branch — plus one store
/// into the always-on flight ring (disable that too with
/// [`Recorder::set_flight_capacity`]`(0)` if even that is too much).
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
    /// Live publication target for [`Recorder::publish`], if attached.
    publisher: Option<serve::SharedSnapshot>,
    /// The always-on black box: retains the last N events regardless of the
    /// enabled/disabled state above.
    flight: flight::FlightRing,
    /// Live publication target for flight dumps, if attached.
    flight_publisher: Option<flight::SharedFlight>,
    /// Track names for flight dumps, FIFO-bounded at the ring capacity so
    /// long-running disabled recorders don't accumulate per-query names.
    flight_tracks: std::collections::VecDeque<(Track, String)>,
    flight_declared: BTreeSet<Track>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// A recorder that keeps events, counters and histograms.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Box::default()),
            ..Recorder::default()
        }
    }

    /// Whether this recorder keeps anything. Hot paths with non-trivial
    /// argument preparation should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Give `track` a human-readable name in the trace (Perfetto shows it as
    /// the thread name). The name is built lazily so callers can pass a
    /// `format!` closure without paying for it on repeat declarations — the
    /// first declaration wins, later ones are no-ops. (With the flight ring
    /// active — the default — a disabled recorder still builds the name once
    /// per track so postmortem dumps come out labeled.)
    pub fn declare_track(&mut self, track: Track, name: impl FnOnce() -> String) {
        let need_inner = self
            .inner
            .as_ref()
            .is_some_and(|i| !i.declared.contains(&track));
        let need_flight = self.flight.is_active() && !self.flight_declared.contains(&track);
        if !need_inner && !need_flight {
            return;
        }
        let name = name();
        if need_flight {
            self.flight_declared.insert(track);
            self.flight_tracks.push_back((track, name.clone()));
            // One new track costs at most one ring event, so a name table
            // bounded at the ring capacity always covers the retained tail.
            while self.flight_tracks.len() > self.flight.capacity() {
                if let Some((old, _)) = self.flight_tracks.pop_front() {
                    self.flight_declared.remove(&old);
                }
            }
        }
        if need_inner {
            let inner = self.inner.as_mut().expect("checked above");
            inner.declared.insert(track);
            inner.tracks.push((track, name));
        }
    }

    /// Record a span `[start_us, end_us]` (saturating if reversed).
    #[inline]
    pub fn span(
        &mut self,
        track: Track,
        cat: &'static str,
        name: &'static str,
        start_us: u64,
        end_us: u64,
        args: &[(&'static str, u64)],
    ) {
        let dur = end_us.saturating_sub(start_us);
        self.flight.record_parts(
            track,
            cat,
            name,
            start_us,
            dur,
            flight::SlotKind::Span,
            0,
            args,
        );
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.events.push(Event {
            track,
            cat,
            name,
            ts_us: start_us,
            dur_us: Some(dur),
            flow: None,
            args: args.to_vec(),
        });
    }

    /// Record an instant event at `ts_us`.
    #[inline]
    pub fn instant(
        &mut self,
        track: Track,
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        args: &[(&'static str, u64)],
    ) {
        self.flight.record_parts(
            track,
            cat,
            name,
            ts_us,
            0,
            flight::SlotKind::Instant,
            0,
            args,
        );
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.events.push(Event {
            track,
            cat,
            name,
            ts_us,
            dur_us: None,
            flow: None,
            args: args.to_vec(),
        });
    }

    /// Record one endpoint of a flow arrow (`id` pairs the two endpoints;
    /// the arrow is drawn from the `Start` event's track to the `Finish`
    /// event's track). Used to link a request's span tree to the replay
    /// track that actually served it.
    #[inline]
    pub fn flow(
        &mut self,
        track: Track,
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        id: u64,
        dir: FlowDir,
    ) {
        let kind = match dir {
            FlowDir::Start => flight::SlotKind::FlowStart,
            FlowDir::Finish => flight::SlotKind::FlowFinish,
        };
        self.flight
            .record_parts(track, cat, name, ts_us, 0, kind, id, &[]);
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.events.push(Event {
            track,
            cat,
            name,
            ts_us,
            dur_us: None,
            flow: Some((id, dir)),
            args: Vec::new(),
        });
    }

    /// Add `delta` to a named monotonic counter.
    #[inline]
    pub fn add(&mut self, counter: &'static str, delta: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        *inner.counters.entry(counter).or_insert(0) += delta;
    }

    /// Record `value` into a named histogram.
    #[inline]
    pub fn observe(&mut self, hist: &'static str, value: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.hists.entry(hist).or_default().record(value);
    }

    /// Set a labeled series to `value` (last write wins). Labels are
    /// `(key, value)` pairs; they are sorted here so the same logical
    /// series always maps to one entry regardless of caller order.
    pub fn set_labeled(&mut self, name: &'static str, labels: &[(&str, &str)], value: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        key.sort();
        inner.labeled.insert((name, key), value);
    }

    /// Add `delta` to a labeled series (creating it at 0).
    pub fn add_labeled(&mut self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        key.sort();
        *inner.labeled.entry((name, key)).or_insert(0) += delta;
    }

    /// Current value of a labeled series (0 if absent or disabled).
    pub fn labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let Some(inner) = self.inner.as_ref() else {
            return 0;
        };
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        key.sort();
        inner
            .labeled
            .iter()
            .find(|((n, k), _)| *n == name && *k == key)
            .map(|(_, &v)| v)
            .unwrap_or(0)
    }

    /// Current value of a counter (0 if never touched or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// All recorded events in insertion order (empty when disabled).
    pub fn events(&self) -> &[Event] {
        self.inner
            .as_ref()
            .map(|i| i.events.as_slice())
            .unwrap_or(&[])
    }

    /// Number of recorded events with the given name.
    pub fn event_count(&self, name: &str) -> usize {
        self.events().iter().filter(|e| e.name == name).count()
    }

    /// Fold wall-clock NN-pool task spans (from [`wall::drain`]) into the
    /// trace on [`WALL_PID`] tracks, one per worker. Tasks are sorted by
    /// `(start, worker, item)` for a stable layout, but wall timestamps are
    /// inherently non-deterministic — they never appear in
    /// [`Self::virtual_trace_json`].
    pub fn absorb_wall_tasks(&mut self, mut tasks: Vec<wall::WallTask>) {
        if self.inner.is_none() {
            return;
        }
        tasks.sort_by_key(|t| (t.start_us, t.worker, t.item));
        for t in tasks {
            let track = Track::wall(t.worker);
            self.declare_track(track, || format!("nn-worker-{}", t.worker));
            let (start, end) = (t.start_us, t.start_us + t.dur_us);
            if t.req != 0 {
                // Request-labeled capture: the span names the serving
                // request whose admission drove this pool task.
                self.span(
                    track,
                    "nn",
                    t.label,
                    start,
                    end,
                    &[("item", t.item), ("request", t.req)],
                );
            } else {
                self.span(track, "nn", t.label, start, end, &[("item", t.item)]);
            }
        }
    }

    /// Fold training-telemetry records (from [`train::drain`]) into the
    /// trace: per-epoch spans on the training worker's wall track, held-out
    /// F1 instants on a dedicated evaluation track, plus epoch counters
    /// (`nn.train.epochs` / `nn.refine.epochs`, models trained/refined) and
    /// loss / gradient-norm / F1 histograms. Records are sorted by
    /// `(start, worker, model, epoch)` for a stable layout; like wall tasks
    /// they never appear in [`Self::virtual_trace_json`].
    pub fn absorb_train_telemetry(&mut self, mut recs: Vec<train::TrainRec>) {
        if self.inner.is_none() {
            return;
        }
        fn key(r: &train::TrainRec) -> (u64, u32, u64, u32) {
            match r {
                train::TrainRec::Epoch(e) => (e.start_us, e.worker, e.model, e.epoch),
                train::TrainRec::HeldoutF1(f) => (f.at_us, u32::MAX, f.query, 0),
            }
        }
        recs.sort_by_key(key);
        let mut trained = BTreeSet::new();
        let mut refined = BTreeSet::new();
        for r in recs {
            match r {
                train::TrainRec::Epoch(e) => {
                    let track = Track::wall(e.worker);
                    self.declare_track(track, || format!("nn-worker-{}", e.worker));
                    self.span(
                        track,
                        "nn",
                        if e.refine {
                            "nn.refine.epoch"
                        } else {
                            "nn.epoch"
                        },
                        e.start_us,
                        e.start_us + e.dur_us,
                        &[
                            ("model", e.model),
                            ("epoch", e.epoch as u64),
                            ("steps", e.steps as u64),
                            ("loss_e6", e.loss_e6),
                            ("grad_norm_e6", e.grad_norm_e6),
                        ],
                    );
                    let (counter, models) = if e.refine {
                        ("nn.refine.epochs", &mut refined)
                    } else {
                        ("nn.train.epochs", &mut trained)
                    };
                    self.add(counter, 1);
                    models.insert(e.model);
                    self.observe("nn.epoch_loss_e6", e.loss_e6);
                    self.observe("nn.grad_norm_e6", e.grad_norm_e6);
                }
                train::TrainRec::HeldoutF1(f) => {
                    let track = Track::wall(train::EVAL_TID);
                    self.declare_track(track, || "nn-heldout-eval".to_owned());
                    self.instant(
                        track,
                        "nn",
                        "nn.heldout_f1",
                        f.at_us,
                        &[("query", f.query), ("f1_e6", f.f1_e6)],
                    );
                    self.add("nn.heldout.evals", 1);
                    self.observe("nn.heldout_f1_e6", f.f1_e6);
                }
            }
        }
        if !trained.is_empty() {
            self.add("nn.models_trained", trained.len() as u64);
        }
        if !refined.is_empty() {
            self.add("nn.models_refined", refined.len() as u64);
        }
    }

    /// Attach a live publication target: [`Recorder::publish`] will copy
    /// snapshots into `shared`, which a [`serve::MetricsServer`] exposes.
    pub fn set_publisher(&mut self, shared: serve::SharedSnapshot) {
        self.publisher = Some(shared);
    }

    /// Copy the current snapshot to the attached publisher, if any. One
    /// branch when nothing is attached; intended for warm points (per
    /// admission wave), not per-event hot paths.
    pub fn publish(&self) {
        if let Some(p) = &self.publisher {
            p.publish(self.snapshot());
        }
    }

    /// Attach a live publication target for flight dumps:
    /// [`Recorder::trigger_flight`] will render and publish the ring into
    /// `shared`, which `/debug/flight` serves.
    pub fn set_flight_publisher(&mut self, shared: flight::SharedFlight) {
        self.flight_publisher = Some(shared);
    }

    /// Change the flight ring's retention cap (0 disables it entirely).
    /// Drops whatever the ring currently retains.
    pub fn set_flight_capacity(&mut self, capacity: usize) {
        self.flight.set_capacity(capacity);
        self.flight_tracks.clear();
        self.flight_declared.clear();
    }

    /// The always-on flight ring (for retention checks and tests).
    pub fn flight(&self) -> &flight::FlightRing {
        &self.flight
    }

    /// Fire an anomaly trigger: stamp a `flight.trigger` instant (category
    /// = `reason`) on the flight track, bump the `flight.triggers` counter,
    /// and — if a [`flight::SharedFlight`] is attached — render the ring to
    /// Chrome-trace JSON and publish it as a postmortem dump. Without a
    /// publisher the trigger is cheap (no rendering), so hot-path callers
    /// (the per-completion slow-request check) can fire unconditionally.
    pub fn trigger_flight(&mut self, reason: &'static str, ts_us: u64) {
        if !self.flight.is_active() {
            return;
        }
        let seq = self.flight.seq();
        self.declare_track(Track::virt(tid::FLIGHT), || "flight-recorder".to_owned());
        self.instant(
            Track::virt(tid::FLIGHT),
            reason,
            "flight.trigger",
            ts_us,
            &[("seq", seq)],
        );
        self.add("flight.triggers", 1);
        if let Some(p) = &self.flight_publisher {
            let dump = flight::FlightDump {
                reason: reason.to_owned(),
                trace_json: self.flight_dump_json(),
                trigger_seq: seq,
            };
            p.publish(dump);
        }
    }

    /// Render the flight ring (plus its bounded track-name table) as
    /// Chrome trace-event JSON — the `/debug/flight` body and the
    /// `--flight-out` file format.
    pub fn flight_dump_json(&self) -> String {
        let events = self.flight.snapshot();
        let tracks: Vec<(Track, String)> = self.flight_tracks.iter().cloned().collect();
        chrome::trace_json(&events, &tracks, None)
    }

    /// The full trace (virtual + wall events) as Chrome trace-event JSON.
    pub fn chrome_trace_json(&self) -> String {
        self.trace_json(None)
    }

    /// Only the deterministic virtual-time events — byte-identical across
    /// runs with the same seed (and a fixed inference charge).
    pub fn virtual_trace_json(&self) -> String {
        self.trace_json(Some(VIRTUAL_PID))
    }

    fn trace_json(&self, pid_filter: Option<u32>) -> String {
        let (events, tracks): (&[Event], &[(Track, String)]) = match self.inner.as_ref() {
            Some(i) => (&i.events, &i.tracks),
            None => (&[], &[]),
        };
        chrome::trace_json(events, tracks, pid_filter)
    }

    /// Snapshot of counters and histogram summaries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self.inner.as_ref() {
            None => MetricsSnapshot::default(),
            Some(i) => MetricsSnapshot {
                counters: i
                    .counters
                    .iter()
                    .map(|(&k, &v)| (k.to_owned(), v))
                    .collect(),
                hists: i
                    .hists
                    .iter()
                    .map(|(&k, h)| (k.to_owned(), h.summary()))
                    .collect(),
                labeled: i
                    .labeled
                    .iter()
                    .map(|((name, labels), &v)| ((*name).to_owned(), labels.clone(), v))
                    .collect(),
            },
        }
    }

    /// Drop all recorded data (including the flight ring's retained tail),
    /// keeping the enabled/disabled state and the ring capacity.
    pub fn clear(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            **inner = Inner::default();
        }
        self.flight.clear();
        self.flight_tracks.clear();
        self.flight_declared.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.declare_track(Track::virt(1), || "q".to_owned());
        r.span(Track::virt(1), "c", "s", 0, 10, &[]);
        r.instant(Track::virt(1), "c", "i", 5, &[("k", 1)]);
        r.add("n", 3);
        r.observe("h", 7);
        assert!(r.events().is_empty());
        assert_eq!(r.counter("n"), 0);
        assert_eq!(r.chrome_trace_json(), "[\n]\n");
        // ...but the always-on flight ring still retained the tail.
        assert_eq!(r.flight().len(), 2);
        assert!(r.flight_dump_json().contains("\"name\":\"q\""));
        // With the ring capped to 0 the recorder is a true no-op: even the
        // lazy track name is never built.
        let mut r = Recorder::disabled();
        r.set_flight_capacity(0);
        r.declare_track(Track::virt(1), || unreachable!("lazy name not built"));
        r.span(Track::virt(1), "c", "s", 0, 10, &[]);
        assert!(r.flight().is_empty());
        assert_eq!(r.flight_dump_json(), "[\n]\n");
    }

    #[test]
    fn enabled_recorder_keeps_everything() {
        let mut r = Recorder::enabled();
        r.declare_track(Track::virt(5), || "q".to_owned());
        r.span(Track::virt(5), "query", "replay", 10, 30, &[("q", 0)]);
        r.instant(Track::virt(5), "read", "read.hit", 12, &[("page", 9)]);
        r.add("reads.hit", 1);
        r.add("reads.hit", 2);
        r.observe("lat", 20);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.event_count("read.hit"), 1);
        assert_eq!(r.counter("reads.hit"), 3);
        let e = &r.events()[0];
        assert_eq!(e.dur_us, Some(20));
        assert_eq!(r.events()[1].dur_us, None);
    }

    #[test]
    fn declare_track_is_first_wins() {
        let mut r = Recorder::enabled();
        r.declare_track(Track::virt(1), || "first".to_owned());
        r.declare_track(Track::virt(1), || "second".to_owned());
        let json = r.chrome_trace_json();
        assert!(json.contains("first"));
        assert!(!json.contains("second"));
    }

    #[test]
    fn span_saturates_reversed_interval() {
        let mut r = Recorder::enabled();
        r.span(Track::virt(0), "c", "s", 50, 30, &[]);
        assert_eq!(r.events()[0].dur_us, Some(0));
    }

    #[test]
    fn virtual_filter_excludes_wall_events() {
        let mut r = Recorder::enabled();
        r.span(Track::virt(0), "c", "virtual_span", 0, 1, &[]);
        r.absorb_wall_tasks(vec![wall::WallTask {
            label: "nn.train",
            worker: 2,
            item: 7,
            req: 0,
            start_us: 100,
            dur_us: 5,
        }]);
        let full = r.chrome_trace_json();
        let virt = r.virtual_trace_json();
        assert!(full.contains("nn.train") && full.contains("virtual_span"));
        assert!(!virt.contains("nn.train"));
        assert!(virt.contains("virtual_span"));
    }

    #[test]
    fn clear_keeps_enabled_state() {
        let mut r = Recorder::enabled();
        r.add("n", 1);
        r.clear();
        assert!(r.is_enabled());
        assert_eq!(r.counter("n"), 0);
        assert!(r.events().is_empty());
    }

    #[test]
    fn absorb_train_telemetry_builds_spans_counters_and_hists() {
        let mut r = Recorder::enabled();
        let epoch = |model: u64, epoch: u32, refine: bool, loss_e6: u64| {
            train::TrainRec::Epoch(train::EpochRec {
                refine,
                worker: 1,
                model,
                epoch,
                steps: 4,
                loss_e6,
                grad_norm_e6: 10 * loss_e6,
                start_us: 100 * (epoch as u64 + 1),
                dur_us: 50,
            })
        };
        r.absorb_train_telemetry(vec![
            epoch(7, 1, false, 400_000),
            epoch(7, 0, false, 800_000), // out of order: absorb sorts by start
            epoch(3, 0, true, 200_000),
            train::TrainRec::HeldoutF1(train::F1Rec {
                query: 5,
                f1_e6: 875_000,
                at_us: 999,
            }),
        ]);
        assert_eq!(r.event_count("nn.epoch"), 2);
        assert_eq!(r.event_count("nn.refine.epoch"), 1);
        assert_eq!(r.event_count("nn.heldout_f1"), 1);
        assert_eq!(r.counter("nn.train.epochs"), 2);
        assert_eq!(r.counter("nn.refine.epochs"), 1);
        assert_eq!(r.counter("nn.models_trained"), 1);
        assert_eq!(r.counter("nn.models_refined"), 1);
        assert_eq!(r.counter("nn.heldout.evals"), 1);
        let spans: Vec<&Event> = r.events().iter().filter(|e| e.name == "nn.epoch").collect();
        assert!(spans[0].ts_us <= spans[1].ts_us, "sorted by start");
        assert!(spans[0].args.contains(&("loss_e6", 800_000)));
        let snap = r.snapshot();
        assert_eq!(snap.hist("nn.epoch_loss_e6").unwrap().count, 3);
        assert_eq!(snap.hist("nn.heldout_f1_e6").unwrap().max, 875_000);
        // Training telemetry is wall-clock: the virtual trace stays clean.
        assert!(!r.virtual_trace_json().contains("nn.epoch"));
        assert!(r.chrome_trace_json().contains("nn.epoch"));
        assert!(r.chrome_trace_json().contains("nn-heldout-eval"));
    }

    #[test]
    fn publish_copies_snapshot_to_shared_cell() {
        let shared = serve::SharedSnapshot::new();
        let mut r = Recorder::enabled();
        r.set_publisher(shared.clone());
        r.add("reads.hit", 4);
        assert_eq!(shared.get().counter("reads.hit"), 0, "not yet published");
        r.publish();
        assert_eq!(shared.get().counter("reads.hit"), 4);
        // A recorder with no publisher attached is a no-op.
        Recorder::enabled().publish();
        Recorder::disabled().publish();
    }

    #[test]
    fn snapshot_collects_counters_and_hists() {
        let mut r = Recorder::enabled();
        r.add("b", 2);
        r.add("a", 1);
        r.observe("h", 10);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a".to_owned(), 1), ("b".to_owned(), 2)],
            "counters are sorted by name"
        );
        assert_eq!(s.hists.len(), 1);
        assert_eq!(s.hists[0].1.count, 1);
    }

    #[test]
    fn labeled_series_set_add_and_snapshot() {
        let mut r = Recorder::enabled();
        // Label order must not matter: both writes hit the same series.
        r.set_labeled("q.hit", &[("tenant", "0"), ("template", "T18")], 5);
        r.set_labeled("q.hit", &[("template", "T18"), ("tenant", "0")], 9);
        r.add_labeled("fe.accepted", &[("tenant", "1")], 2);
        r.add_labeled("fe.accepted", &[("tenant", "1")], 3);
        assert_eq!(
            r.labeled("q.hit", &[("tenant", "0"), ("template", "T18")]),
            9
        );
        assert_eq!(r.labeled("fe.accepted", &[("tenant", "1")]), 5);
        assert_eq!(r.labeled("fe.accepted", &[("tenant", "2")]), 0);
        let s = r.snapshot();
        assert_eq!(s.labeled.len(), 2);
        assert_eq!(s.labeled[0].0, "fe.accepted");
        assert_eq!(s.labeled[0].2, 5);
        // Disabled recorder drops labeled writes like everything else.
        let mut d = Recorder::disabled();
        d.set_labeled("x", &[("t", "0")], 1);
        assert_eq!(d.labeled("x", &[("t", "0")]), 0);
        assert!(d.snapshot().labeled.is_empty());
    }

    #[test]
    fn flow_events_link_tracks_in_both_exports() {
        let mut r = Recorder::enabled();
        r.flow(
            Track::virt(5),
            "request",
            "request.flow",
            10,
            42,
            FlowDir::Start,
        );
        r.flow(
            Track::virt(9),
            "request",
            "request.flow",
            12,
            42,
            FlowDir::Finish,
        );
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].flow, Some((42, FlowDir::Start)));
        let json = r.chrome_trace_json();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""), "{json}");
        assert!(json.contains("\"id\":42"), "{json}");
        // The ring mirrors flow endpoints too.
        assert_eq!(r.flight().len(), 2);
        assert!(r.flight_dump_json().contains("\"ph\":\"s\""));
    }

    #[test]
    fn flight_ring_mirrors_recording_regardless_of_enabled_state() {
        for enabled in [false, true] {
            let mut r = if enabled {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            };
            r.set_flight_capacity(4);
            r.declare_track(Track::virt(7), || "q7".to_owned());
            for i in 0..9u64 {
                r.span(Track::virt(7), "c", "s", i * 10, i * 10 + 5, &[("i", i)]);
            }
            assert_eq!(r.flight().len(), 4, "enabled={enabled}");
            assert_eq!(r.flight().seq(), 9);
            let dump = r.flight_dump_json();
            // Only the last four spans survive: starts 50..=80.
            assert!(!dump.contains("\"ts\":40"), "{dump}");
            for ts in [50, 60, 70, 80] {
                assert!(dump.contains(&format!("\"ts\":{ts}")), "{dump}");
            }
            assert!(dump.contains("\"name\":\"q7\""), "track name retained");
        }
    }

    #[test]
    fn trigger_flight_publishes_a_labeled_dump() {
        let shared = flight::SharedFlight::new();
        let mut r = Recorder::disabled();
        r.set_flight_capacity(8);
        r.set_flight_publisher(shared.clone());
        r.span(Track::virt(1), "c", "replay", 0, 100, &[]);
        assert_eq!(shared.get(), None, "no trigger yet");
        r.trigger_flight("drift.alert", 120);
        let dump = shared.get().expect("dump published on trigger");
        assert_eq!(dump.reason, "drift.alert");
        assert_eq!(dump.trigger_seq, 1, "one event before the trigger");
        assert!(
            dump.trace_json.contains("\"name\":\"replay\""),
            "{}",
            dump.trace_json
        );
        assert!(
            dump.trace_json.contains("\"name\":\"flight.trigger\""),
            "the trigger instant itself lands in the dump: {}",
            dump.trace_json
        );
        assert!(
            dump.trace_json.contains("flight-recorder"),
            "{}",
            dump.trace_json
        );
        // The trigger also leaves durable marks in the recorder itself —
        // but a disabled recorder has no counters, so check the enabled one.
        let mut e = Recorder::enabled();
        e.trigger_flight("slow.request", 5);
        assert_eq!(e.counter("flight.triggers"), 1);
        assert_eq!(e.event_count("flight.trigger"), 1);
        // An inactive ring makes triggers a no-op.
        let mut off = Recorder::enabled();
        off.set_flight_capacity(0);
        off.trigger_flight("slow.request", 5);
        assert_eq!(off.counter("flight.triggers"), 0);
    }

    #[test]
    fn flight_track_names_are_fifo_bounded_at_ring_capacity() {
        let mut r = Recorder::disabled();
        r.set_flight_capacity(3);
        for i in 0..10u32 {
            r.declare_track(Track::virt(tid::QUERY_BASE + i), || format!("query-{i}"));
            r.instant(Track::virt(tid::QUERY_BASE + i), "c", "e", i as u64, &[]);
        }
        let dump = r.flight_dump_json();
        assert!(!dump.contains("query-0"), "evicted name: {dump}");
        assert!(dump.contains("query-9"), "{dump}");
    }
}
