//! Metrics snapshots: the counter/histogram side of a [`crate::Recorder`],
//! exported as deterministic hand-rolled JSON (sorted keys, integer-only
//! values) so it can be merged verbatim into `perf_snapshot`'s
//! `BENCH_nn.json` without pulling a JSON dependency into this crate.

use crate::hist::HistSummary;

/// Counters and histogram summaries at one point in time. All vectors are
/// sorted by name (the recorder stores them in `BTreeMap`s).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub hists: Vec<(String, HistSummary)>,
    /// Labeled series: `(name, sorted label pairs, value)` — e.g. per-tenant
    /// frontend counters or per-(tenant, template) quality gauges.
    pub labeled: Vec<(String, Vec<(String, String)>, u64)>,
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl MetricsSnapshot {
    /// Value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Summary of a histogram, if recorded.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Value of a labeled series, 0 when absent. `labels` must be sorted by
    /// key (the recorder sorts on write).
    pub fn labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.labeled
            .iter()
            .find(|(n, l, _)| {
                n == name
                    && l.len() == labels.len()
                    && l.iter()
                        .zip(labels)
                        .all(|((k, v), (ek, ev))| k == ek && v == ev)
            })
            .map(|&(_, _, v)| v)
            .unwrap_or(0)
    }

    /// Deterministic JSON object:
    /// `{"counters":{...},"histograms_us":{name:{count,sum,min,max,p50,p90,p95,p99}}}`,
    /// plus a `"labeled"` array (`[name, {labels}, value]` triples) only when
    /// any labeled series exist — the empty shape is pinned by tests and
    /// merged verbatim into BENCH artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms_us\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max.to_string());
            out.push_str(",\"p50\":");
            out.push_str(&h.p50.to_string());
            out.push_str(",\"p90\":");
            out.push_str(&h.p90.to_string());
            out.push_str(",\"p95\":");
            out.push_str(&h.p95.to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.p99.to_string());
            out.push('}');
        }
        out.push('}');
        if !self.labeled.is_empty() {
            out.push_str(",\"labeled\":[");
            for (i, (name, labels, v)) in self.labeled.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("[\"");
                escape_into(&mut out, name);
                out.push_str("\",{");
                for (j, (lk, lv)) in labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(&mut out, lk);
                    out.push_str("\":\"");
                    escape_into(&mut out, lv);
                    out.push('"');
                }
                out.push_str("},");
                out.push_str(&v.to_string());
                out.push(']');
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// The snapshot in Prometheus text exposition format (version 0.0.4):
    /// counters become `counter` metrics, histogram summaries become
    /// `summary` metrics with `quantile` labels plus `_sum`/`_count` series.
    /// Metric names are prefixed `pythia_` and sanitized (`.` → `_`), so
    /// `reads.hit` scrapes as `pythia_reads_hit`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            out.push_str("# TYPE ");
            out.push_str(&name);
            out.push_str(" counter\n");
            out.push_str(&name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (k, h) in &self.hists {
            let name = prom_name(k);
            out.push_str("# TYPE ");
            out.push_str(&name);
            out.push_str(" summary\n");
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.95", h.p95),
                ("0.99", h.p99),
            ] {
                out.push_str(&name);
                out.push_str("{quantile=\"");
                out.push_str(q);
                out.push_str("\"} ");
                out.push_str(&v.to_string());
                out.push('\n');
            }
            out.push_str(&name);
            out.push_str("_sum ");
            out.push_str(&h.sum.to_string());
            out.push('\n');
            out.push_str(&name);
            out.push_str("_count ");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        let mut last_labeled = "";
        for (k, labels, v) in &self.labeled {
            let name = prom_name(k);
            if k != last_labeled {
                out.push_str("# TYPE ");
                out.push_str(&name);
                out.push_str(" gauge\n");
                last_labeled = k;
            }
            out.push_str(&name);
            out.push('{');
            for (i, (lk, lv)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&prom_label_key(lk));
                out.push_str("=\"");
                escape_prom_label_value(&mut out, lv);
                out.push('"');
            }
            out.push_str("} ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Sanitize a label key into `[a-zA-Z0-9_]` (Prometheus label names take no
/// colons, unlike metric names).
fn prom_label_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label *value* per the Prometheus text exposition rules:
/// backslash, double-quote and line-feed are the only escapes.
fn escape_prom_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Sanitize a recorder metric name into a Prometheus metric name:
/// `pythia_` prefix, and every character outside `[a-zA-Z0-9_:]` → `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("pythia_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_json() {
        assert_eq!(
            MetricsSnapshot::default().to_json(),
            "{\"counters\":{},\"histograms_us\":{}}"
        );
    }

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            hists: vec![(
                "lat".into(),
                HistSummary {
                    count: 3,
                    sum: 30,
                    min: 5,
                    max: 20,
                    p50: 7,
                    p90: 15,
                    p95: 16,
                    p99: 20,
                },
            )],
            labeled: vec![],
        }
    }

    #[test]
    fn json_shape_and_lookups() {
        let snap = sample();
        assert_eq!(snap.counter("b"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.hist("lat").unwrap().count, 3);
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"a\":1,\"b\":2},\"histograms_us\":{\"lat\":{\"count\":3,\"sum\":30,\"min\":5,\"max\":20,\"p50\":7,\"p90\":15,\"p95\":16,\"p99\":20}}}"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = sample();
        snap.counters.push(("reads.hit".into(), 9));
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE pythia_a counter\npythia_a 1\n"));
        assert!(text.contains("# TYPE pythia_reads_hit counter\npythia_reads_hit 9\n"));
        assert!(text.contains("# TYPE pythia_lat summary\n"));
        assert!(text.contains("pythia_lat{quantile=\"0.5\"} 7\n"));
        assert!(text.contains("pythia_lat{quantile=\"0.95\"} 16\n"));
        assert!(text.contains("pythia_lat{quantile=\"0.99\"} 20\n"));
        assert!(text.contains("pythia_lat_sum 30\n"));
        assert!(text.contains("pythia_lat_count 3\n"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE pythia_")
                    || (line.starts_with("pythia_")
                        && line.rsplit(' ').next().unwrap().parse::<u64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }

    fn labeled_sample() -> MetricsSnapshot {
        let mut snap = sample();
        snap.labeled = vec![
            (
                "frontend.accepted".into(),
                vec![("tenant".into(), "0".into())],
                7,
            ),
            (
                "frontend.accepted".into(),
                vec![("tenant".into(), "1".into())],
                3,
            ),
            (
                "quality.hit_rate_e6".into(),
                vec![
                    ("template".into(), "query.replay.T18".into()),
                    ("tenant".into(), "0".into()),
                ],
                912_000,
            ),
        ];
        snap
    }

    #[test]
    fn labeled_series_json_and_lookup() {
        let snap = labeled_sample();
        assert_eq!(snap.labeled("frontend.accepted", &[("tenant", "1")]), 3);
        assert_eq!(snap.labeled("frontend.accepted", &[("tenant", "9")]), 0);
        assert_eq!(
            snap.labeled(
                "quality.hit_rate_e6",
                &[("template", "query.replay.T18"), ("tenant", "0")]
            ),
            912_000
        );
        let json = snap.to_json();
        assert!(json.contains(
            "\"labeled\":[[\"frontend.accepted\",{\"tenant\":\"0\"},7],[\"frontend.accepted\",{\"tenant\":\"1\"},3]"
        ));
        assert!(json.ends_with("]}"));
        // The empty shape stays byte-identical to the pre-labeled pin.
        assert!(!MetricsSnapshot::default().to_json().contains("labeled"));
    }

    #[test]
    fn prometheus_labeled_series_shape() {
        let text = labeled_sample().to_prometheus();
        assert!(text.contains("# TYPE pythia_frontend_accepted gauge\n"));
        assert!(text.contains("pythia_frontend_accepted{tenant=\"0\"} 7\n"));
        assert!(text.contains("pythia_frontend_accepted{tenant=\"1\"} 3\n"));
        assert!(text.contains(
            "pythia_quality_hit_rate_e6{template=\"query.replay.T18\",tenant=\"0\"} 912000\n"
        ));
        // One TYPE line per metric name even with many label sets.
        assert_eq!(text.matches("# TYPE pythia_frontend_accepted").count(), 1);
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE pythia_")
                    || (line.starts_with("pythia_")
                        && line.rsplit(' ').next().unwrap().parse::<u64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_label_value_escaping() {
        let snap = MetricsSnapshot {
            counters: vec![],
            hists: vec![],
            labeled: vec![(
                "frontend.accepted".into(),
                vec![("tenant".into(), "acme \"prod\"\\eu\nwest".into())],
                4,
            )],
        };
        let text = snap.to_prometheus();
        assert!(text
            .contains("pythia_frontend_accepted{tenant=\"acme \\\"prod\\\"\\\\eu\\nwest\"} 4\n"));
        // No raw newline may survive inside a sample line.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prom_name("reads.hit"), "pythia_reads_hit");
        assert_eq!(
            prom_name("server.admission_wait_us"),
            "pythia_server_admission_wait_us"
        );
        assert_eq!(prom_name("weird-name/x"), "pythia_weird_name_x");
    }
}
