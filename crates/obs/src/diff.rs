//! Structural diffing of virtual-clock trace files — the regression gate
//! behind `trace_diff` and `ci.sh`.
//!
//! A Chrome trace-event file from [`crate::Recorder::chrome_trace_json`]
//! mixes two processes: the deterministic virtual clock ([`crate::VIRTUAL_PID`])
//! and wall-clock worker spans ([`crate::WALL_PID`]). [`summarize`] parses a
//! trace with a built-in minimal JSON reader (objects, arrays, strings,
//! unsigned integers, booleans, null — exactly what our emitter produces;
//! phases `M`, `X`, `i`, and the `s`/`f` flow endpoints), keeps only the
//! virtual process, and reduces it to:
//!
//! * per-event-name totals (count + total span duration),
//! * the declared virtual track names,
//! * a canonical line-per-event re-emission for byte-level comparison.
//!
//! [`diff`] compares two summaries structurally; an *allowlist* of event
//! names (exact, or `prefix.*`) marks intentional drift so a golden trace
//! can survive a deliberate change without hiding unrelated regressions.
//! Wall-clock tracks never participate — they are non-deterministic by
//! construction.

use std::collections::BTreeMap;

use crate::VIRTUAL_PID;

/// Aggregate of all virtual events sharing one name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NameStats {
    pub count: u64,
    /// Summed span durations (instants contribute 0).
    pub total_dur_us: u64,
}

/// The structural reduction of one trace file's virtual process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-event-name totals, sorted by name.
    pub per_name: BTreeMap<String, NameStats>,
    /// Declared virtual tracks: tid → thread name.
    pub tracks: BTreeMap<u64, String>,
    /// Number of virtual (non-metadata) events.
    pub virtual_events: u64,
    /// One canonical line per virtual event, in file order — empty for
    /// summaries parsed back from [`TraceSummary::render`] output.
    pub canonical: String,
}

impl TraceSummary {
    /// Stable textual form, suitable for checking in as a golden file.
    pub fn render(&self) -> String {
        let mut out = String::from("# trace_diff summary v1\n");
        for (tid, name) in &self.tracks {
            out.push_str(&format!("track\t{tid}\t{name}\n"));
        }
        for (name, s) in &self.per_name {
            out.push_str(&format!("event\t{name}\t{}\t{}\n", s.count, s.total_dur_us));
        }
        out
    }

    /// Parse [`TraceSummary::render`] output back into a summary (with no
    /// canonical event block, so only structural comparisons apply).
    pub fn parse_rendered(text: &str) -> Result<TraceSummary, String> {
        let mut out = TraceSummary::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let bad = |what: &str| format!("summary line {}: {what}: {line}", lineno + 1);
            match fields.as_slice() {
                ["track", tid, name] => {
                    let tid = tid.parse::<u64>().map_err(|_| bad("bad tid"))?;
                    out.tracks.insert(tid, (*name).to_owned());
                }
                ["event", name, count, dur] => {
                    let count = count.parse::<u64>().map_err(|_| bad("bad count"))?;
                    let total_dur_us = dur.parse::<u64>().map_err(|_| bad("bad dur"))?;
                    out.per_name.insert(
                        (*name).to_owned(),
                        NameStats {
                            count,
                            total_dur_us,
                        },
                    );
                    out.virtual_events += count;
                }
                _ => return Err(bad("unrecognized summary line")),
            }
        }
        Ok(out)
    }
}

/// Parse a Chrome trace-event JSON file and reduce its virtual process.
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let Json::Arr(events) = root else {
        return Err("trace root is not a JSON array".to_owned());
    };
    let mut out = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(fields) = ev else {
            return Err(format!("trace event {i} is not a JSON object"));
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let str_field = |k: &str| -> Result<&str, String> {
            match get(k) {
                Some(Json::Str(s)) => Ok(s),
                _ => Err(format!("trace event {i}: missing string field {k:?}")),
            }
        };
        let num_field = |k: &str| -> Result<u64, String> {
            match get(k) {
                Some(Json::Num(n)) => Ok(*n),
                _ => Err(format!("trace event {i}: missing numeric field {k:?}")),
            }
        };
        let ph = str_field("ph")?;
        let pid = num_field("pid")?;
        if pid != VIRTUAL_PID as u64 {
            continue; // wall-clock process: excluded by design
        }
        let tid = num_field("tid")?;
        // Field errors past this point carry the offending track: declared
        // name when the metadata event already passed, coordinates either way.
        let track_ctx = match out.tracks.get(&tid) {
            Some(name) => format!(" (pid {pid}, tid {tid}, track {name:?})"),
            None => format!(" (pid {pid}, tid {tid}, undeclared track)"),
        };
        match ph {
            "M" => {
                if str_field("name").map_err(|e| format!("{e}{track_ctx}"))? == "thread_name" {
                    if let Some(Json::Obj(args)) = get("args") {
                        if let Some((_, Json::Str(n))) = args.iter().find(|(k, _)| k == "name") {
                            out.tracks.insert(tid, n.clone());
                        }
                    }
                }
            }
            "X" | "i" | "s" | "f" => {
                let name = str_field("name").map_err(|e| format!("{e}{track_ctx}"))?;
                let ts = num_field("ts").map_err(|e| format!("{e}{track_ctx}"))?;
                let dur = if ph == "X" {
                    num_field("dur").map_err(|e| format!("{e}{track_ctx}"))?
                } else {
                    0
                };
                let cat = str_field("cat").map_err(|e| format!("{e}{track_ctx}"))?;
                // Flow endpoints must carry their pairing id; it leads the
                // canonical args column so re-pairings are byte-visible.
                let mut args = render_args(get("args"));
                if ph == "s" || ph == "f" {
                    let id = num_field("id").map_err(|e| format!("{e}{track_ctx}"))?;
                    args = format!("id={id},{args}");
                }
                let stats = out.per_name.entry(name.to_owned()).or_default();
                stats.count += 1;
                stats.total_dur_us += dur;
                out.virtual_events += 1;
                out.canonical.push_str(&format!(
                    "{ph}\t{tid}\t{ts}\t{dur}\t{cat}\t{name}\t{args}\n"
                ));
            }
            other => {
                return Err(format!(
                    "trace event {i}: unknown phase {other:?}{track_ctx}"
                ))
            }
        }
    }
    Ok(out)
}

/// [`summarize`], additionally rejecting traces with no virtual events —
/// what a silently broken recorder would produce.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let summary = summarize(text)?;
    if summary.virtual_events == 0 {
        return Err("trace parses but contains no virtual-clock events".to_owned());
    }
    Ok(summary)
}

fn render_args(args: Option<&Json>) -> String {
    let mut out = String::new();
    if let Some(Json::Obj(pairs)) = args {
        for (k, v) in pairs {
            if let Json::Num(n) = v {
                out.push_str(&format!("{k}={n},"));
            }
        }
    }
    out
}

/// Does `name` match an allowlist entry (exact, or `prefix.*`)?
fn allowed(name: &str, allow: &[String]) -> bool {
    allow.iter().any(|a| {
        if let Some(prefix) = a.strip_suffix('*') {
            name.starts_with(prefix)
        } else {
            a == name
        }
    })
}

/// Compare two summaries. Returns one human-readable message per drift;
/// empty means the virtual traces are structurally identical. Event names
/// on the allowlist may drift (including appearing/disappearing) without
/// being reported. When both summaries carry canonical event blocks and the
/// allowlist is empty, a final byte-level pass catches reorderings and
/// timestamp shifts that leave per-name totals intact.
pub fn diff(a: &TraceSummary, b: &TraceSummary, allow: &[String]) -> Vec<String> {
    let mut msgs = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        a.per_name.keys().chain(b.per_name.keys()).collect();
    for name in names {
        if allowed(name, allow) {
            continue;
        }
        let sa = a.per_name.get(name).copied().unwrap_or_default();
        let sb = b.per_name.get(name).copied().unwrap_or_default();
        if sa.count != sb.count {
            msgs.push(format!(
                "event {name:?}: count {} -> {}",
                sa.count, sb.count
            ));
        }
        if sa.total_dur_us != sb.total_dur_us {
            msgs.push(format!(
                "event {name:?}: total duration {}us -> {}us",
                sa.total_dur_us, sb.total_dur_us
            ));
        }
    }
    let tids: std::collections::BTreeSet<&u64> = a.tracks.keys().chain(b.tracks.keys()).collect();
    for tid in tids {
        let ta = a.tracks.get(tid).map(String::as_str).unwrap_or("<absent>");
        let tb = b.tracks.get(tid).map(String::as_str).unwrap_or("<absent>");
        if ta != tb && !allowed(ta, allow) && !allowed(tb, allow) {
            msgs.push(format!("track {tid}: name {ta:?} -> {tb:?}"));
        }
    }
    if msgs.is_empty()
        && allow.is_empty()
        && !a.canonical.is_empty()
        && !b.canonical.is_empty()
        && a.canonical != b.canonical
    {
        msgs.push(
            "virtual events differ in order, timestamps, or args \
             (per-name totals match)"
                .to_owned(),
        );
    }
    msgs
}

// --- minimal JSON reader -----------------------------------------------
// Covers exactly the grammar our own emitter produces (plus booleans/null
// for safety): no floats, no negative numbers. Foreign files that use more
// of JSON fail with a position-stamped error, which is the right behavior
// for a validation gate.

/// A parsed JSON value (integers only — our traces carry no floats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            _ => Err(self.err("expected a JSON value (floats/negatives unsupported)")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.b[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers unsupported"));
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        s.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| self.err("integer out of u64 range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wall, Recorder, Track};

    /// A small recorder with both virtual and wall events.
    fn sample_recorder(span_name: &'static str) -> Recorder {
        let mut r = Recorder::enabled();
        r.declare_track(Track::virt(0), || "server".to_owned());
        r.declare_track(Track::virt(1000), || "query-0 T18".to_owned());
        r.span(
            Track::virt(1000),
            "query",
            span_name,
            10,
            40,
            &[("reads", 3)],
        );
        r.span(
            Track::virt(1000),
            "query",
            span_name,
            50,
            70,
            &[("reads", 1)],
        );
        r.instant(Track::virt(0), "server", "server.arrive", 5, &[("q", 0)]);
        r.absorb_wall_tasks(vec![wall::WallTask {
            label: "nn.train",
            worker: 0,
            item: 0,
            req: 0,
            start_us: 1234, // wall time: must never reach the summary
            dur_us: 99,
        }]);
        r
    }

    #[test]
    fn summarize_reduces_virtual_process_only() {
        let s = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        assert_eq!(s.virtual_events, 3);
        assert_eq!(
            s.per_name.get("query.replay"),
            Some(&NameStats {
                count: 2,
                total_dur_us: 50
            })
        );
        assert_eq!(
            s.per_name.get("server.arrive"),
            Some(&NameStats {
                count: 1,
                total_dur_us: 0
            })
        );
        assert!(!s.per_name.contains_key("nn.train"), "wall events excluded");
        assert_eq!(s.tracks.get(&1000).map(String::as_str), Some("query-0 T18"));
        assert!(!s.tracks.values().any(|n| n.contains("nn-worker")));
    }

    #[test]
    fn identical_traces_have_zero_drift() {
        let a = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        let b = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        assert_eq!(diff(&a, &b, &[]), Vec::<String>::new());
    }

    #[test]
    fn deliberate_span_rename_fails_the_gate_unless_allowlisted() {
        let a = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        let b = summarize(&sample_recorder("query.replay.T18").chrome_trace_json()).unwrap();
        let drift = diff(&a, &b, &[]);
        assert!(
            drift.iter().any(|m| m.contains("query.replay")),
            "rename must be reported: {drift:?}"
        );
        // Exact allowlist entries cover both the old and the new name...
        let allow = vec!["query.replay".to_owned(), "query.replay.T18".to_owned()];
        assert_eq!(diff(&a, &b, &allow), Vec::<String>::new());
        // ...and a prefix entry covers the whole family.
        let allow = vec!["query.replay*".to_owned()];
        assert_eq!(diff(&a, &b, &allow), Vec::<String>::new());
    }

    #[test]
    fn timestamp_shift_is_caught_at_the_byte_level() {
        let mut shifted = Recorder::enabled();
        shifted.declare_track(Track::virt(0), || "server".to_owned());
        shifted.declare_track(Track::virt(1000), || "query-0 T18".to_owned());
        // Same names, counts, and total durations as sample_recorder, but
        // the second span starts one microsecond later.
        shifted.span(
            Track::virt(1000),
            "query",
            "query.replay",
            10,
            40,
            &[("reads", 3)],
        );
        shifted.span(
            Track::virt(1000),
            "query",
            "query.replay",
            51,
            71,
            &[("reads", 1)],
        );
        shifted.instant(Track::virt(0), "server", "server.arrive", 5, &[("q", 0)]);
        let a = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        let b = summarize(&shifted.chrome_trace_json()).unwrap();
        let drift = diff(&a, &b, &[]);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("differ in order, timestamps, or args"));
    }

    #[test]
    fn flow_endpoints_summarize_and_pin_their_id() {
        use crate::FlowDir;
        let mut r = Recorder::enabled();
        r.flow(
            Track::virt(0),
            "request",
            "request.flow",
            5,
            42,
            FlowDir::Start,
        );
        r.flow(
            Track::virt(1000),
            "request",
            "request.flow",
            9,
            42,
            FlowDir::Finish,
        );
        let s = summarize(&r.chrome_trace_json()).unwrap();
        assert_eq!(s.virtual_events, 2);
        assert_eq!(
            s.per_name.get("request.flow"),
            Some(&NameStats {
                count: 2,
                total_dur_us: 0
            })
        );
        assert!(s
            .canonical
            .contains("s\t0\t5\t0\trequest\trequest.flow\tid=42,\n"));
        assert!(s
            .canonical
            .contains("f\t1000\t9\t0\trequest\trequest.flow\tid=42,\n"));
        // Re-pairing the arrow (same names/counts) is byte-visible.
        let mut repaired = Recorder::enabled();
        repaired.flow(
            Track::virt(0),
            "request",
            "request.flow",
            5,
            43,
            FlowDir::Start,
        );
        repaired.flow(
            Track::virt(1000),
            "request",
            "request.flow",
            9,
            43,
            FlowDir::Finish,
        );
        let s2 = summarize(&repaired.chrome_trace_json()).unwrap();
        let drift = diff(&s, &s2, &[]);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("differ in order, timestamps, or args"));
        // A flow endpoint missing its id is a malformed trace.
        let bad = "[{\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":1,\"cat\":\"c\",\"name\":\"x\"}]";
        let err = summarize(bad).unwrap_err();
        assert!(err.contains("missing numeric field \"id\""), "{err}");
    }

    #[test]
    fn validate_rejects_empty_and_invalid_traces() {
        assert!(validate("").is_err(), "empty file");
        assert!(validate("not json").is_err(), "invalid JSON");
        assert!(validate("{}").is_err(), "not an array");
        assert!(
            validate("[\n]\n").is_err(),
            "valid array but no virtual events"
        );
        let wall_only = {
            let mut r = Recorder::enabled();
            r.absorb_wall_tasks(vec![wall::WallTask {
                label: "nn.train",
                worker: 0,
                item: 0,
                req: 0,
                start_us: 0,
                dur_us: 1,
            }]);
            r.chrome_trace_json()
        };
        assert!(validate(&wall_only).is_err(), "wall-only trace");
        assert!(validate(&sample_recorder("query.replay").chrome_trace_json()).is_ok());
    }

    #[test]
    fn validation_errors_name_the_offending_track() {
        // Declared track, then an event on it missing its "name" field.
        let bad = concat!(
            "[\n",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":7,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"query-7 T18\"}},\n",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":1,\"dur\":2,\"cat\":\"q\"}\n",
            "]\n"
        );
        let err = summarize(bad).unwrap_err();
        assert!(err.contains("trace event 1"), "{err}");
        assert!(err.contains("missing string field \"name\""), "{err}");
        assert!(err.contains("pid 1, tid 7, track \"query-7 T18\""), "{err}");
        // Unknown phase on a track with no metadata: coordinates still named.
        let bad = "[{\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":0,\"name\":\"x\",\"cat\":\"c\"}]";
        let err = summarize(bad).unwrap_err();
        assert!(err.contains("unknown phase \"B\""), "{err}");
        assert!(err.contains("pid 1, tid 3, undeclared track"), "{err}");
    }

    #[test]
    fn rendered_summary_round_trips_structurally() {
        let s = summarize(&sample_recorder("query.replay").chrome_trace_json()).unwrap();
        let rendered = s.render();
        let back = TraceSummary::parse_rendered(&rendered).unwrap();
        assert_eq!(back.per_name, s.per_name);
        assert_eq!(back.tracks, s.tracks);
        assert_eq!(back.virtual_events, s.virtual_events);
        assert!(back.canonical.is_empty());
        // A golden comparison (no canonical block) still catches drift.
        let renamed = summarize(&sample_recorder("query.other").chrome_trace_json()).unwrap();
        assert!(!diff(&back, &renamed, &[]).is_empty());
        assert_eq!(diff(&back, &s, &[]), Vec::<String>::new());
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_floats() {
        let v = parse_json(r#"{"a\n\"b":[1,2,{"c":true,"d":null}],"e":"A"}"#).unwrap();
        let Json::Obj(pairs) = v else { panic!() };
        assert_eq!(pairs[0].0, "a\n\"b");
        assert_eq!(pairs[1], ("e".to_owned(), Json::Str("A".to_owned())));
        assert!(parse_json("1.5").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("[1] trailing").is_err());
    }
}
