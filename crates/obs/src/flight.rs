//! The always-on flight recorder: a fixed-memory ring of recent events.
//!
//! A full [`crate::Recorder`] keeps *everything* and is therefore opt-in;
//! by the time an anomaly fires in production the evidence is gone unless a
//! trace export happened to be running. The flight recorder closes that gap:
//! every span/instant/flow recorded through a `Recorder` — enabled *or*
//! disabled — is also copied into a [`FlightRing`], a preallocated circular
//! buffer that retains the last `capacity` events and nothing else. Recording
//! is O(1), allocation-free after the first event (slots are `Copy`, argument
//! storage is inline and truncated to [`SLOT_ARGS`] pairs), and costs one
//! bounds-checked store — cheap enough to leave on for the untraced
//! continuous-serve path (the `obs_flight_*` BENCH fields measure it).
//!
//! On an anomaly trigger (`drift.alert`, a shed burst, a slow request —
//! see `Recorder::trigger_flight`) the ring is rendered to Chrome-trace
//! JSON and published into a [`SharedFlight`] cell, where a
//! [`crate::serve::MetricsServer`] exposes it at `/debug/flight`. The dump
//! is a postmortem: the last `capacity` events *before* the trigger, across
//! every track, loadable in Perfetto like any other trace.

use std::sync::{Arc, Mutex};

use crate::{Event, FlowDir, Track};

/// Default ring capacity (events). ~80 bytes per slot, so the default ring
/// holds the recent past in well under a megabyte.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Inline argument pairs kept per slot; longer argument lists are truncated
/// (the full list still reaches the main trace when the recorder is enabled).
pub const SLOT_ARGS: usize = 2;

/// What a slot represents — the flight-side mirror of the event phases the
/// Chrome emitter knows (`X`, `i`, `s`, `f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A complete span; `dur_us` is meaningful.
    Span,
    /// An instant event.
    Instant,
    /// A flow-start binding point; `flow_id` is meaningful.
    FlowStart,
    /// A flow-finish binding point; `flow_id` is meaningful.
    FlowFinish,
}

/// One ring slot: a fixed-size, `Copy` rendering of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightSlot {
    pub track: Track,
    pub cat: &'static str,
    pub name: &'static str,
    pub ts_us: u64,
    /// Span duration; 0 and unused for non-span kinds.
    pub dur_us: u64,
    pub kind: SlotKind,
    /// Flow-event id; 0 and unused for non-flow kinds.
    pub flow_id: u64,
    /// Inline argument storage; only the first `n_args` entries are live.
    pub args: [(&'static str, u64); SLOT_ARGS],
    pub n_args: u8,
}

impl FlightSlot {
    /// Expand the slot back into a full [`Event`] for trace emission.
    pub fn to_event(self) -> Event {
        Event {
            track: self.track,
            cat: self.cat,
            name: self.name,
            ts_us: self.ts_us,
            dur_us: match self.kind {
                SlotKind::Span => Some(self.dur_us),
                _ => None,
            },
            flow: match self.kind {
                SlotKind::FlowStart => Some((self.flow_id, FlowDir::Start)),
                SlotKind::FlowFinish => Some((self.flow_id, FlowDir::Finish)),
                _ => None,
            },
            args: self.args[..self.n_args as usize].to_vec(),
        }
    }
}

/// The fixed-memory event ring. Storage is allocated lazily on the first
/// recorded event (so a never-touched recorder costs nothing) and never
/// grows past `capacity` slots.
#[derive(Debug, Clone)]
pub struct FlightRing {
    capacity: usize,
    slots: Vec<FlightSlot>,
    /// Next write position (== `slots.len()` until the ring first wraps).
    next: usize,
    /// Total events ever recorded (monotone; identifies trigger points).
    seq: u64,
}

impl Default for FlightRing {
    fn default() -> FlightRing {
        FlightRing::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRing {
    /// A ring retaining the last `capacity` events (0 disables recording).
    pub fn with_capacity(capacity: usize) -> FlightRing {
        FlightRing {
            capacity,
            slots: Vec::new(),
            next: 0,
            seq: 0,
        }
    }

    /// Whether the ring records at all (capacity > 0).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.capacity > 0
    }

    /// Configured capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total events ever recorded, including those already overwritten.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Record one slot. O(1); allocates only on the very first event (the
    /// slot vector reserves full capacity up front so steady-state recording
    /// never reallocates).
    #[inline]
    pub fn record(&mut self, slot: FlightSlot) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            if self.slots.capacity() == 0 {
                self.slots.reserve_exact(self.capacity);
            }
            self.slots.push(slot);
        } else {
            self.slots[self.next] = slot;
        }
        self.next += 1;
        if self.next == self.capacity {
            self.next = 0;
        }
        self.seq += 1;
    }

    /// Build and record a slot from event parts, truncating `args` to the
    /// inline limit. The single public entry point `Recorder` goes through.
    #[inline]
    pub fn record_parts(
        &mut self,
        track: Track,
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        dur_us: u64,
        kind: SlotKind,
        flow_id: u64,
        args: &[(&'static str, u64)],
    ) {
        if self.capacity == 0 {
            return;
        }
        let n = args.len().min(SLOT_ARGS);
        let mut inline = [("", 0u64); SLOT_ARGS];
        inline[..n].copy_from_slice(&args[..n]);
        self.record(FlightSlot {
            track,
            cat,
            name,
            ts_us,
            dur_us,
            kind,
            flow_id,
            args: inline,
            n_args: n as u8,
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        if self.slots.len() < self.capacity {
            self.slots.iter().map(|s| s.to_event()).collect()
        } else {
            self.slots[self.next..]
                .iter()
                .chain(&self.slots[..self.next])
                .map(|s| s.to_event())
                .collect()
        }
    }

    /// Change the retention cap. Drops everything currently retained (the
    /// ring layout depends on the capacity); 0 turns recording off.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.clear();
    }

    /// Drop all retained events (the monotone `seq` is preserved).
    pub fn clear(&mut self) {
        self.slots = Vec::new();
        self.next = 0;
    }
}

/// One published postmortem: the rendered ring plus why it was dumped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Trigger reason (`drift.alert`, `slow.request`, `shed.burst`, ...).
    pub reason: String,
    /// The ring rendered as Chrome trace-event JSON.
    pub trace_json: String,
    /// Ring sequence number at the trigger instant.
    pub trigger_seq: u64,
}

/// The cell a recorder publishes flight dumps into and `/debug/flight`
/// serves from. Cheap to clone (an `Arc`); cloning shares the cell. Holds
/// the *latest* dump only — a postmortem endpoint, not an archive.
#[derive(Debug, Clone, Default)]
pub struct SharedFlight {
    cell: Arc<Mutex<Option<FlightDump>>>,
}

impl SharedFlight {
    /// A fresh cell with no dump captured yet.
    pub fn new() -> SharedFlight {
        SharedFlight::default()
    }

    /// Replace the published dump.
    pub fn publish(&self, dump: FlightDump) {
        *self.cell.lock().expect("flight cell poisoned") = Some(dump);
    }

    /// The most recent dump, if any anomaly has fired.
    pub fn get(&self) -> Option<FlightDump> {
        self.cell.lock().expect("flight cell poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: u64) -> FlightSlot {
        FlightSlot {
            track: Track::virt(0),
            cat: "t",
            name: "e",
            ts_us: i,
            dur_us: 1,
            kind: SlotKind::Span,
            flow_id: 0,
            args: [("i", i), ("", 0)],
            n_args: 1,
        }
    }

    #[test]
    fn ring_retains_exactly_the_last_capacity_events_in_order() {
        let mut ring = FlightRing::with_capacity(4);
        for i in 0..10 {
            ring.record(slot(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.seq(), 10);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest → newest tail");
        // Before wrapping, the partial fill comes back in insertion order.
        let mut young = FlightRing::with_capacity(4);
        young.record(slot(0));
        young.record(slot(1));
        let ts: Vec<u64> = young.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![0, 1]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = FlightRing::with_capacity(0);
        assert!(!ring.is_active());
        ring.record(slot(1));
        ring.record_parts(Track::virt(0), "c", "n", 0, 0, SlotKind::Instant, 0, &[]);
        assert!(ring.is_empty());
        assert_eq!(ring.seq(), 0);
        assert_eq!(ring.snapshot(), Vec::new());
    }

    #[test]
    fn set_capacity_resets_retention() {
        let mut ring = FlightRing::default();
        assert_eq!(ring.capacity(), DEFAULT_CAPACITY);
        ring.record(slot(1));
        ring.set_capacity(2);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(slot(i));
        }
        assert_eq!(ring.len(), 2);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![3, 4]);
    }

    #[test]
    fn record_parts_truncates_args_and_maps_kinds() {
        let mut ring = FlightRing::with_capacity(8);
        ring.record_parts(
            Track::virt(1),
            "c",
            "span",
            10,
            5,
            SlotKind::Span,
            0,
            &[("a", 1), ("b", 2), ("c", 3)], // third pair truncated away
        );
        ring.record_parts(
            Track::virt(1),
            "c",
            "inst",
            11,
            0,
            SlotKind::Instant,
            0,
            &[],
        );
        ring.record_parts(
            Track::virt(1),
            "c",
            "fs",
            12,
            0,
            SlotKind::FlowStart,
            7,
            &[],
        );
        ring.record_parts(
            Track::virt(2),
            "c",
            "ff",
            13,
            0,
            SlotKind::FlowFinish,
            7,
            &[],
        );
        let evs = ring.snapshot();
        assert_eq!(evs[0].dur_us, Some(5));
        assert_eq!(evs[0].args, vec![("a", 1), ("b", 2)]);
        assert_eq!(evs[1].dur_us, None);
        assert_eq!(evs[1].flow, None);
        assert_eq!(evs[2].flow, Some((7, FlowDir::Start)));
        assert_eq!(evs[3].flow, Some((7, FlowDir::Finish)));
    }

    #[test]
    fn shared_flight_holds_the_latest_dump() {
        let cell = SharedFlight::new();
        assert_eq!(cell.get(), None);
        cell.publish(FlightDump {
            reason: "drift.alert".to_owned(),
            trace_json: "[\n]\n".to_owned(),
            trigger_seq: 3,
        });
        cell.publish(FlightDump {
            reason: "slow.request".to_owned(),
            trace_json: "[\n]\n".to_owned(),
            trigger_seq: 9,
        });
        let dump = cell.get().expect("dump published");
        assert_eq!(dump.reason, "slow.request");
        assert_eq!(dump.trigger_seq, 9);
    }
}
