//! Request identity and per-request latency breakdowns.
//!
//! A *request id* is the identity that follows one query from the TCP
//! front (or `PrefetchServer` ingestion, for programmatic replays) through
//! queueing, admission, batched inference, and replay. The serving loop
//! emits a per-request span tree on a dedicated track
//! ([`request_track`]) — `request.queue`, `request.admission`,
//! `request.infer`, `request.replay` — flow-linked (`request.flow`) to the
//! query's replay track, and reduces each served request to a
//! [`RequestBreakdown`]. The top-K slowest breakdowns accumulate in a
//! [`SlowLog`], exposed live at `/debug/slow` through a [`SharedSlowLog`].
//!
//! Ids from [`mint`] are process-wide and wall-ordered, so they are **not**
//! deterministic across runs; the serving loop instead assigns
//! deterministic per-batch ids to requests that arrive without one, keeping
//! same-seed traces byte-identical. [`mint`] exists for fronts that need an
//! identity *before* the serving loop sees the request (the TCP front mints
//! at accept time so a request is attributable even if it is later shed).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{tid, Track};

static NEXT: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh process-wide request id (never 0 — 0 means "unassigned").
pub fn mint() -> u64 {
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The virtual-time track a request's span tree lives on.
pub fn request_track(request: u64) -> Track {
    Track::virt(tid::REQUEST_BASE.wrapping_add(request as u32))
}

/// Where one served request's latency went, in virtual microseconds.
///
/// `queue_us + admission_us + replay_us` spans arrival → completion
/// ([`RequestBreakdown::latency_us`]); `infer_us` is the request's share of
/// batched inference, which overlaps the admission phase rather than adding
/// to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestBreakdown {
    /// Request id (0 if the request was served without one).
    pub request: u64,
    pub tenant: u32,
    /// Virtual arrival instant.
    pub arrival_us: u64,
    /// Arrival → admission: time spent queued behind the concurrency limit.
    pub queue_us: u64,
    /// Admission → replay start: dispatch, including the inference charge.
    pub admission_us: u64,
    /// This request's share of (batched) inference.
    pub infer_us: u64,
    /// Replay start → completion: page I/O + execution.
    pub replay_us: u64,
}

impl RequestBreakdown {
    /// End-to-end latency: arrival → completion.
    pub fn latency_us(&self) -> u64 {
        self.queue_us + self.admission_us + self.replay_us
    }

    /// One-line JSON rendering (the `/debug/slow` entry shape).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"request\":{},\"tenant\":{},\"arrival_us\":{},\"queue_us\":{},\
             \"admission_us\":{},\"infer_us\":{},\"replay_us\":{},\"latency_us\":{}}}",
            self.request,
            self.tenant,
            self.arrival_us,
            self.queue_us,
            self.admission_us,
            self.infer_us,
            self.replay_us,
            self.latency_us()
        )
    }
}

/// A bounded, sorted log of the slowest requests seen so far.
#[derive(Debug, Clone)]
pub struct SlowLog {
    k: usize,
    /// Sorted by descending latency; at most `k` entries.
    entries: Vec<RequestBreakdown>,
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog::with_k(16)
    }
}

impl SlowLog {
    /// A log retaining the `k` slowest requests.
    pub fn with_k(k: usize) -> SlowLog {
        SlowLog {
            k,
            entries: Vec::new(),
        }
    }

    /// Offer one breakdown; it is kept only if it ranks in the top `k`.
    /// Ties keep the earlier entry first (insertion after equals), so
    /// repeated offers of the same run are stable.
    pub fn offer(&mut self, b: RequestBreakdown) {
        if self.k == 0 {
            return;
        }
        if self.entries.len() == self.k
            && self
                .entries
                .last()
                .is_some_and(|e| e.latency_us() >= b.latency_us())
        {
            return;
        }
        let pos = self
            .entries
            .iter()
            .position(|e| e.latency_us() < b.latency_us())
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, b);
        self.entries.truncate(self.k);
    }

    /// The retained breakdowns, slowest first.
    pub fn entries(&self) -> &[RequestBreakdown] {
        &self.entries
    }

    /// JSON rendering (the `/debug/slow` response body).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"k\":{},\"count\":{},\"requests\":[",
            self.k,
            self.entries.len()
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}\n");
        out
    }
}

/// The cell a serving loop folds slow requests into and `/debug/slow`
/// serves from. Cheap to clone (an `Arc`); cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct SharedSlowLog {
    cell: Arc<Mutex<SlowLog>>,
}

impl SharedSlowLog {
    /// A fresh cell with the default top-16 retention.
    pub fn new() -> SharedSlowLog {
        SharedSlowLog::default()
    }

    /// Offer one breakdown to the shared log.
    pub fn offer(&self, b: RequestBreakdown) {
        self.cell.lock().expect("slow log poisoned").offer(b);
    }

    /// JSON rendering of the current log.
    pub fn to_json(&self) -> String {
        self.cell.lock().expect("slow log poisoned").to_json()
    }

    /// A snapshot of the current log.
    pub fn get(&self) -> SlowLog {
        self.cell.lock().expect("slow log poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(request: u64, latency: u64) -> RequestBreakdown {
        RequestBreakdown {
            request,
            replay_us: latency, // all latency in one phase keeps sums simple
            ..RequestBreakdown::default()
        }
    }

    #[test]
    fn mint_is_monotone_and_nonzero() {
        let a = mint();
        let b = mint();
        assert!(a > 0);
        assert!(b > a);
    }

    #[test]
    fn request_tracks_are_virtual_and_distinct() {
        let t1 = request_track(1);
        let t2 = request_track(2);
        assert_eq!(t1.pid, crate::VIRTUAL_PID);
        assert_eq!(t1.tid, tid::REQUEST_BASE + 1);
        assert_ne!(t1, t2);
    }

    #[test]
    fn breakdown_latency_and_json() {
        let b = RequestBreakdown {
            request: 7,
            tenant: 1,
            arrival_us: 100,
            queue_us: 10,
            admission_us: 5,
            infer_us: 5,
            replay_us: 50,
        };
        assert_eq!(b.latency_us(), 65);
        let json = b.to_json();
        assert!(json.contains("\"request\":7"), "{json}");
        assert!(json.contains("\"latency_us\":65"), "{json}");
        assert!(json.contains("\"infer_us\":5"), "{json}");
    }

    #[test]
    fn slow_log_keeps_top_k_sorted_descending() {
        let mut log = SlowLog::with_k(3);
        for (r, lat) in [(1, 50), (2, 10), (3, 99), (4, 70), (5, 5)] {
            log.offer(bd(r, lat));
        }
        let got: Vec<(u64, u64)> = log
            .entries()
            .iter()
            .map(|e| (e.request, e.latency_us()))
            .collect();
        assert_eq!(got, vec![(3, 99), (4, 70), (1, 50)]);
        // A tie with the current floor does not evict the earlier entry.
        log.offer(bd(6, 50));
        assert_eq!(log.entries()[2].request, 1);
        let json = log.to_json();
        assert!(
            json.starts_with("{\"k\":3,\"count\":3,\"requests\":["),
            "{json}"
        );
        assert!(json.contains("\"request\":3"), "{json}");

        let mut none = SlowLog::with_k(0);
        none.offer(bd(1, 1));
        assert!(none.entries().is_empty());
    }

    #[test]
    fn shared_slow_log_accumulates_across_clones() {
        let shared = SharedSlowLog::new();
        let other = shared.clone();
        shared.offer(bd(1, 10));
        other.offer(bd(2, 20));
        let log = shared.get();
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].request, 2);
        assert!(shared.to_json().contains("\"count\":2"));
    }
}
