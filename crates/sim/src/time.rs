//! Virtual time: a monotone microsecond clock.
//!
//! All latencies in the simulator are expressed as [`SimDuration`]s and all
//! instants as [`SimTime`]s. Using newtypes (rather than bare `u64`) prevents
//! the classic bug of mixing instants and durations in arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual timeline, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply the duration by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(10);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a).as_micros(), 5);
    }

    #[test]
    fn subtraction_matches_since() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(40);
        assert_eq!(a - b, a.since(b));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
    }

    #[test]
    fn max_min_ordering() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_mul() {
        let d = SimDuration::from_micros(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4).as_micros(), u64::MAX);
    }
}
