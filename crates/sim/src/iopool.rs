//! Asynchronous I/O worker pool (virtual-time model).
//!
//! The AIO branch the paper builds on issues prefetch reads through a pool of
//! I/O workers; multiple reads proceed concurrently and complete out of band
//! while the query's executor keeps working. We model each worker as a lane
//! with a `free_at` timestamp: scheduling a fetch picks the earliest-free
//! lane, and the fetch completes at `max(now, free_at) + latency`.
//!
//! This is where prefetch speedup comes from: K workers turn a chain of
//! serial random reads (N × disk_read) into a pipeline (~N × disk_read / K),
//! overlapped with executor CPU time.

use crate::time::{SimDuration, SimTime};

/// A pool of asynchronous I/O lanes.
#[derive(Debug, Clone)]
pub struct IoWorkerPool {
    free_at: Vec<SimTime>,
    issued: u64,
}

/// Full placement of one scheduled fetch: which lane ran it and when it
/// occupied the lane. `schedule` returns only `completes`; tracing callers
/// use [`IoWorkerPool::schedule_detailed`] to draw the lane-occupancy span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSchedule {
    /// Index of the lane that ran the fetch.
    pub lane: usize,
    /// When the fetch began occupying the lane (`max(now, lane free time)`).
    pub start: SimTime,
    /// When the fetch completes.
    pub completes: SimTime,
}

impl IoWorkerPool {
    /// A pool of `workers` lanes, all idle at time zero.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "I/O pool needs at least one worker");
        IoWorkerPool {
            free_at: vec![SimTime::ZERO; workers],
            issued: 0,
        }
    }

    /// Number of lanes.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Total fetches scheduled since construction or [`Self::reset`].
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Schedule an asynchronous fetch costing `latency`, requested at `now`.
    /// Returns the virtual time at which the fetch completes.
    pub fn schedule(&mut self, now: SimTime, latency: SimDuration) -> SimTime {
        self.schedule_detailed(now, latency).completes
    }

    /// Like [`Self::schedule`], but also reports the lane and start time so
    /// callers can attribute the fetch to a specific I/O worker.
    pub fn schedule_detailed(&mut self, now: SimTime, latency: SimDuration) -> IoSchedule {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("pool is non-empty");
        let start = self.free_at[idx].max(now);
        let done = start + latency;
        self.free_at[idx] = done;
        self.issued += 1;
        IoSchedule {
            lane: idx,
            start,
            completes: done,
        }
    }

    /// Earliest time at which any lane is free (i.e. when a newly scheduled
    /// fetch could start).
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Time at which all in-flight work drains.
    pub fn drained_at(&self) -> SimTime {
        self.free_at.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Forget all in-flight work (cold restart between runs).
    pub fn reset(&mut self) {
        self.free_at.fill(SimTime::ZERO);
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_micros(1_000);

    #[test]
    fn single_worker_serializes() {
        let mut p = IoWorkerPool::new(1);
        let t0 = p.schedule(SimTime::ZERO, MS);
        let t1 = p.schedule(SimTime::ZERO, MS);
        assert_eq!(t0.as_micros(), 1_000);
        assert_eq!(t1.as_micros(), 2_000, "second fetch queues behind first");
    }

    #[test]
    fn parallel_workers_overlap() {
        let mut p = IoWorkerPool::new(4);
        let times: Vec<_> = (0..4).map(|_| p.schedule(SimTime::ZERO, MS)).collect();
        assert!(times.iter().all(|t| t.as_micros() == 1_000));
        let fifth = p.schedule(SimTime::ZERO, MS);
        assert_eq!(fifth.as_micros(), 2_000);
    }

    #[test]
    fn schedule_respects_request_time() {
        let mut p = IoWorkerPool::new(2);
        let t = p.schedule(SimTime::from_micros(500), MS);
        assert_eq!(t.as_micros(), 1_500);
    }

    #[test]
    fn earliest_free_and_drained() {
        let mut p = IoWorkerPool::new(2);
        p.schedule(SimTime::ZERO, MS);
        p.schedule(SimTime::ZERO, SimDuration::from_micros(3_000));
        assert_eq!(p.earliest_free().as_micros(), 1_000);
        assert_eq!(p.drained_at().as_micros(), 3_000);
    }

    #[test]
    fn reset_clears_lanes() {
        let mut p = IoWorkerPool::new(2);
        p.schedule(SimTime::ZERO, MS);
        p.reset();
        assert_eq!(p.earliest_free(), SimTime::ZERO);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn throughput_scales_with_workers() {
        // 64 fetches of 1ms: 8 workers should finish 8x sooner than 1.
        let finish = |workers: usize| {
            let mut p = IoWorkerPool::new(workers);
            (0..64)
                .map(|_| p.schedule(SimTime::ZERO, MS))
                .max()
                .unwrap()
        };
        assert_eq!(finish(1).as_micros(), 64_000);
        assert_eq!(finish(8).as_micros(), 8_000);
    }

    #[test]
    #[should_panic]
    fn zero_workers_panics() {
        IoWorkerPool::new(0);
    }

    #[test]
    fn schedule_detailed_reports_lane_and_start() {
        let mut p = IoWorkerPool::new(2);
        let a = p.schedule_detailed(SimTime::ZERO, MS);
        let b = p.schedule_detailed(SimTime::ZERO, MS);
        let c = p.schedule_detailed(SimTime::ZERO, MS);
        assert_ne!(a.lane, b.lane, "second fetch takes the other lane");
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(c.start.as_micros(), 1_000, "third queues behind a lane");
        assert_eq!(c.completes.as_micros(), 2_000);
        assert_eq!(p.issued(), 3);
    }
}
