//! A model of the kernel page cache with sequential readahead.
//!
//! Postgres "relies heavily on OS readahead for achieving better performance"
//! (paper §4): when the kernel detects a sequential read pattern on a file it
//! asynchronously pulls the next window of pages into the page cache, so a
//! sequential scan mostly pays memory-copy cost, not disk cost. Non-sequential
//! (index-driven) reads defeat this detection — which is precisely the gap
//! Pythia's learned prefetching fills (Figure 1).
//!
//! The cache is a capacity-bounded LRU set of [`PageId`]s backed by an
//! intrusive doubly-linked list over a slab, giving O(1) access / insert /
//! evict.
//!
//! Sequential-pattern detection is keyed per **(stream, file)**, mirroring
//! the kernel, which keeps its readahead state in `struct file` — per open
//! file descriptor, not per inode. Two concurrent sequential scans of the
//! same file (two backends, or a query and the prefetcher's own reads) each
//! keep their run alive; keying by file alone would let the interleaved
//! accesses destroy both runs.

use std::collections::HashMap;

use crate::disk::{FileId, PageId};

/// Identifies one reader of the OS cache — the analogue of an open file
/// descriptor, whose `struct file` owns the kernel's readahead state.
/// Allocate one per query backend / prefetcher and retire it with
/// [`OsPageCache::retire_stream`] when the reader closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: PageId,
    prev: usize,
    next: usize,
}

/// An O(1) LRU set with fixed capacity.
#[derive(Debug)]
struct LruSet {
    capacity: usize,
    map: HashMap<PageId, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruSet {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruSet {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: PageId) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Mark `key` as most-recently-used, inserting it if absent.
    /// Returns the page evicted to make room, if any.
    fn touch(&mut self, key: PageId) -> Option<PageId> {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let vkey = self.slab[victim].key;
            self.unlink(victim);
            self.map.remove(&vkey);
            self.free.push(victim);
            Some(vkey)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Counters describing OS-cache behaviour during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsCacheStats {
    /// Reads that found the page already cached.
    pub hits: u64,
    /// Reads that had to go to disk.
    pub misses: u64,
    /// Pages pulled in by sequential readahead.
    pub readahead_pages: u64,
}

/// The simulated OS page cache.
#[derive(Debug)]
pub struct OsPageCache {
    lru: LruSet,
    /// Per-(stream, file) sequential-pattern detector:
    /// (last page read, run length).
    seq_state: HashMap<(StreamId, FileId), (u32, u32)>,
    readahead_window: u32,
    stats: OsCacheStats,
}

/// Outcome of a read through the OS cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsReadOutcome {
    /// Whether the page was already in the OS cache (memory copy only).
    pub cache_hit: bool,
    /// How many pages sequential readahead pulled in alongside this read.
    pub readahead_pages: u32,
}

impl OsPageCache {
    /// A cache holding at most `capacity_pages` pages with the given
    /// readahead window (pages fetched ahead once a sequential run is seen).
    pub fn new(capacity_pages: usize, readahead_window: u32) -> Self {
        OsPageCache {
            lru: LruSet::new(capacity_pages),
            seq_state: HashMap::new(),
            readahead_window,
            stats: OsCacheStats::default(),
        }
    }

    /// Whether `pid` is currently cached.
    pub fn contains(&self, pid: PageId) -> bool {
        self.lru.contains(pid)
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// Counters accumulated since construction or the last [`Self::reset`].
    pub fn stats(&self) -> OsCacheStats {
        self.stats
    }

    /// Record a read of `pid` by `stream` from a file with `file_len` pages.
    ///
    /// Updates LRU state, runs the sequential-pattern detector for the given
    /// stream, and performs readahead. The caller translates the outcome into
    /// latency via the cost model.
    pub fn read(&mut self, stream: StreamId, pid: PageId, file_len: u32) -> OsReadOutcome {
        let cache_hit = self.lru.contains(pid);
        if cache_hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.lru.touch(pid);

        // Sequential detection: a run of >= 2 consecutive pages triggers
        // readahead of the next window, like the kernel's ondemand readahead.
        let run = match self.seq_state.get(&(stream, pid.file)) {
            Some(&(last, run)) if pid.page_no == last.wrapping_add(1) => run + 1,
            _ => 1,
        };
        self.seq_state
            .insert((stream, pid.file), (pid.page_no, run));

        // Fan-out is capped at capacity - 1 so readahead can never evict the
        // demand page just read (or wrap around and evict its own earlier
        // insertions) when the window rivals the LRU capacity.
        let fanout = self
            .readahead_window
            .min(self.lru.capacity.saturating_sub(1) as u32);
        let mut readahead_pages = 0u32;
        if run >= 2 && file_len > 0 && fanout > 0 {
            let start = pid.page_no.saturating_add(1);
            let end = pid.page_no.saturating_add(fanout).min(file_len - 1);
            let mut p = start;
            while p <= end {
                let ra = PageId::new(pid.file, p);
                if !self.lru.contains(ra) {
                    self.lru.touch(ra);
                    readahead_pages += 1;
                }
                p += 1;
            }
        }
        self.stats.readahead_pages += readahead_pages as u64;
        OsReadOutcome {
            cache_hit,
            readahead_pages,
        }
    }

    /// Drop the sequential-pattern state a stream accumulated — the analogue
    /// of closing the file descriptor. Cached pages are unaffected. Call this
    /// when a query backend or prefetcher finishes so detector state doesn't
    /// accumulate across the lifetime of a long-running serving stack.
    pub fn retire_stream(&mut self, stream: StreamId) {
        self.seq_state.retain(|&(s, _), _| s != stream);
    }

    /// Insert `pid` without readahead (used when the prefetcher's disk read
    /// completes: the page is now also in the OS cache).
    pub fn insert(&mut self, pid: PageId) {
        self.lru.touch(pid);
    }

    /// Drop all cached pages and detector state — the simulator's analogue of
    /// `echo 3 > /proc/sys/vm/drop_caches`, used between cold-cache runs.
    pub fn reset(&mut self) {
        self.lru.clear();
        self.seq_state.clear();
        self.stats = OsCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::FileId;

    /// Default stream for single-reader tests.
    const S: StreamId = StreamId(0);

    fn pid(f: u32, p: u32) -> PageId {
        PageId::new(FileId(f), p)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = OsPageCache::new(16, 4);
        assert!(!c.read(S, pid(0, 5), 100).cache_hit);
        assert!(c.read(S, pid(0, 5), 100).cache_hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn sequential_run_triggers_readahead() {
        let mut c = OsPageCache::new(64, 4);
        let o0 = c.read(S, pid(0, 0), 100);
        assert_eq!(o0.readahead_pages, 0, "first read: no pattern yet");
        let o1 = c.read(S, pid(0, 1), 100);
        assert_eq!(o1.readahead_pages, 4, "second consecutive read fans out");
        // Pages 2..=5 should now be cached, page 6 not yet.
        assert!(c.contains(pid(0, 2)));
        assert!(c.contains(pid(0, 5)));
        assert!(!c.contains(pid(0, 6)));
        // Continuing the run hits the readahead pages and extends the window.
        assert!(c.read(S, pid(0, 2), 100).cache_hit);
        assert!(c.contains(pid(0, 6)));
    }

    #[test]
    fn random_reads_do_not_trigger_readahead() {
        let mut c = OsPageCache::new(64, 8);
        assert_eq!(c.read(S, pid(0, 10), 100).readahead_pages, 0);
        assert_eq!(c.read(S, pid(0, 50), 100).readahead_pages, 0);
        assert_eq!(c.read(S, pid(0, 3), 100).readahead_pages, 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn readahead_stops_at_eof() {
        let mut c = OsPageCache::new(64, 8);
        c.read(S, pid(0, 3), 6);
        let o = c.read(S, pid(0, 4), 6);
        assert_eq!(o.readahead_pages, 1, "only page 5 exists past page 4");
        assert!(c.contains(pid(0, 5)));
    }

    #[test]
    fn runs_are_per_file() {
        let mut c = OsPageCache::new(64, 4);
        c.read(S, pid(0, 0), 100);
        c.read(S, pid(1, 1), 100);
        // File 0's run was broken by nothing, but page 1 of file 0 continues it.
        let o = c.read(S, pid(0, 1), 100);
        assert_eq!(o.readahead_pages, 4);
    }

    #[test]
    fn interleaved_streams_keep_their_runs() {
        // Regression: two concurrent sequential scans of the SAME file — the
        // kernel keeps readahead state per open fd, so each scan detects its
        // own run. The old per-file detector saw 0, 50, 1, 51, ... and never
        // fired for either scan.
        let mut c = OsPageCache::new(256, 4);
        let (a, b) = (StreamId(1), StreamId(2));
        c.read(a, pid(0, 0), 200);
        c.read(b, pid(0, 50), 200);
        let oa = c.read(a, pid(0, 1), 200);
        assert_eq!(
            oa.readahead_pages, 4,
            "stream A's run survives B's interleaved read"
        );
        let ob = c.read(b, pid(0, 51), 200);
        assert_eq!(
            ob.readahead_pages, 4,
            "stream B's run survives A's interleaved read"
        );
        // Both scans keep extending their windows as they continue.
        assert!(c.read(a, pid(0, 2), 200).cache_hit);
        assert!(c.read(b, pid(0, 52), 200).cache_hit);
    }

    #[test]
    fn one_stream_interleaving_two_offsets_gets_no_readahead() {
        // The fd semantics cut the other way too: a single stream seeking
        // back and forth between two offsets never forms a run.
        let mut c = OsPageCache::new(256, 4);
        c.read(S, pid(0, 0), 200);
        c.read(S, pid(0, 50), 200);
        assert_eq!(c.read(S, pid(0, 1), 200).readahead_pages, 0);
        assert_eq!(c.read(S, pid(0, 51), 200).readahead_pages, 0);
    }

    #[test]
    fn retire_stream_drops_detector_state_only() {
        let mut c = OsPageCache::new(64, 4);
        c.read(S, pid(0, 0), 100);
        c.retire_stream(S);
        // The run restarts from scratch, but cached pages survive.
        assert_eq!(
            c.read(S, pid(0, 1), 100).readahead_pages,
            0,
            "run was forgotten"
        );
        assert!(c.contains(pid(0, 0)), "cached pages are unaffected");
        // A different stream's state is untouched by retiring S.
        let b = StreamId(9);
        c.read(b, pid(1, 0), 100);
        c.retire_stream(S);
        assert_eq!(c.read(b, pid(1, 1), 100).readahead_pages, 4);
    }

    #[test]
    fn readahead_never_evicts_demand_page() {
        // Regression: window >= capacity used to wrap the LRU and evict the
        // demand page that was just read (and earlier readahead insertions).
        let mut c = OsPageCache::new(3, 8);
        c.read(S, pid(0, 0), 100);
        let o = c.read(S, pid(0, 1), 100);
        assert_eq!(o.readahead_pages, 2, "fan-out capped at capacity - 1");
        assert!(
            c.contains(pid(0, 1)),
            "demand page survives its own readahead"
        );
        assert!(c.contains(pid(0, 2)));
        assert!(c.contains(pid(0, 3)));
        assert!(!c.contains(pid(0, 4)), "no insert past the cap");
    }

    #[test]
    fn capacity_one_disables_readahead() {
        let mut c = OsPageCache::new(1, 8);
        c.read(S, pid(0, 0), 100);
        let o = c.read(S, pid(0, 1), 100);
        assert_eq!(o.readahead_pages, 0);
        assert!(c.contains(pid(0, 1)), "demand page is the sole resident");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = OsPageCache::new(2, 4);
        c.read(S, pid(0, 10), 100);
        c.read(S, pid(0, 20), 100);
        c.read(S, pid(0, 30), 100); // evicts page 10
        assert!(!c.contains(pid(0, 10)));
        assert!(c.contains(pid(0, 20)));
        assert!(c.contains(pid(0, 30)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut c = OsPageCache::new(2, 4);
        c.read(S, pid(0, 1), 100);
        c.read(S, pid(0, 7), 100);
        c.read(S, pid(0, 1), 100); // page 1 is now MRU
        c.read(S, pid(0, 9), 100); // evicts page 7, not page 1
        assert!(c.contains(pid(0, 1)));
        assert!(!c.contains(pid(0, 7)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = OsPageCache::new(16, 4);
        c.read(S, pid(0, 0), 100);
        c.read(S, pid(0, 1), 100);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.stats(), OsCacheStats::default());
        // Pattern detector must also be clear: next read is "first".
        assert_eq!(c.read(S, pid(0, 2), 100).readahead_pages, 0);
    }

    #[test]
    fn insert_is_silent() {
        let mut c = OsPageCache::new(16, 4);
        c.insert(pid(0, 42));
        assert!(c.contains(pid(0, 42)));
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn lru_capacity_one() {
        let mut c = OsPageCache::new(1, 4);
        c.read(S, pid(0, 1), 10);
        c.read(S, pid(0, 5), 10);
        assert!(!c.contains(pid(0, 1)));
        assert!(c.contains(pid(0, 5)));
    }
}
