//! # pythia-sim
//!
//! Deterministic discrete-event I/O simulation substrate for the Pythia
//! reproduction.
//!
//! The paper measures wall-clock speedups on a real machine (Postgres + Linux
//! page cache + physical disk). This crate replaces that hardware stack with
//! a virtual-time model so that every experiment is reproducible bit-for-bit:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-granularity virtual clock.
//! * [`CostModel`] — per-access latencies (disk read ≫ OS-cache copy ≫ buffer
//!   hit) mirroring the three-tier read path the paper describes for
//!   Postgres (§4 "Postgres Buffer Management").
//! * [`SimDisk`] — the persistent store: a set of files made of fixed-size
//!   pages that hold real bytes (the mini-RDBMS in `pythia-db` stores its heap
//!   and B+Tree pages here).
//! * [`OsPageCache`] — a capacity-bounded LRU model of the kernel page cache
//!   with sequential readahead, which is why sequential scans are cheap even
//!   without Pythia (the paper's Figure 1 observation).
//! * [`IoWorkerPool`] — N asynchronous I/O lanes used by the prefetcher; this
//!   is what converts "prefetch the predicted pages" into overlapped I/O and
//!   therefore speedup.

pub mod cost;
pub mod disk;
pub mod iopool;
pub mod oscache;
pub mod time;

pub use cost::CostModel;
pub use disk::{FileId, PageId, SimDisk, PAGE_SIZE};
pub use iopool::{IoSchedule, IoWorkerPool};
pub use oscache::{OsPageCache, StreamId};
pub use time::{SimDuration, SimTime};
