//! The latency cost model.
//!
//! Postgres' read path has three tiers (paper §4): a buffer-pool hit, a copy
//! from the OS page cache, and a real disk read. The absolute values below are
//! not calibrated to the paper's hardware — speedups are *ratios*, so only the
//! relative magnitudes matter. The defaults put a random disk read ~40× an
//! OS-cache memcpy and ~400× a buffer hit (spinning/network storage class,
//! consistent with the paper's ~15-minute I/O-bound queries) and reproduce
//! the paper's observed speedup band (up to ~6× for non-sequential-heavy
//! templates with 8 I/O lanes).

use crate::time::SimDuration;

/// Latency parameters for every simulated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// A random read that misses both the buffer pool and the OS page cache.
    /// Includes the kernel→user copy.
    pub disk_read: SimDuration,
    /// A read that misses the buffer pool but hits the OS page cache
    /// (memory copy only).
    pub os_cache_copy: SimDuration,
    /// A read satisfied from the buffer pool.
    pub buffer_hit: SimDuration,
    /// Per-page cost of sequential bulk I/O performed by OS readahead.
    /// Sequential transfers amortize seek cost, so this is far below
    /// `disk_read`.
    pub readahead_per_page: SimDuration,
    /// CPU time the executor spends per tuple it processes (predicate
    /// evaluation, join bookkeeping). This is the work prefetch I/O overlaps
    /// with.
    pub cpu_per_tuple: SimDuration,
    /// Number of pages the OS readahead fetches ahead once a sequential
    /// pattern is detected.
    pub os_readahead_window: u32,
    /// Number of asynchronous I/O workers available to the prefetcher
    /// (the AIO structure's I/O depth).
    pub io_workers: usize,
    /// Simulated latency charged for one Pythia model inference (the paper
    /// reports 1–1.5 s per query across all models; we charge the equivalent
    /// *fraction* of query runtime at our scale).
    pub inference_latency: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disk_read: SimDuration::from_micros(2_000),
            os_cache_copy: SimDuration::from_micros(50),
            buffer_hit: SimDuration::from_micros(5),
            readahead_per_page: SimDuration::from_micros(20),
            cpu_per_tuple: SimDuration::from_micros(2),
            os_readahead_window: 32,
            io_workers: 8,
            inference_latency: SimDuration::from_micros(20_000),
        }
    }
}

impl CostModel {
    /// A cost model with zero inference latency — used when timing oracle or
    /// nearest-neighbour baselines, which do no model inference.
    pub fn without_inference(&self) -> CostModel {
        CostModel {
            inference_latency: SimDuration::ZERO,
            ..self.clone()
        }
    }

    /// Sanity-check the invariants the simulator relies on. Returns an error
    /// string describing the first violated invariant, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.buffer_hit > self.os_cache_copy {
            return Err("buffer_hit must be <= os_cache_copy".into());
        }
        if self.os_cache_copy > self.disk_read {
            return Err("os_cache_copy must be <= disk_read".into());
        }
        if self.io_workers == 0 {
            return Err("io_workers must be >= 1".into());
        }
        if self.os_readahead_window == 0 {
            return Err("os_readahead_window must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CostModel::default().validate().unwrap();
    }

    #[test]
    fn default_tier_ordering() {
        let c = CostModel::default();
        assert!(c.buffer_hit < c.os_cache_copy);
        assert!(c.os_cache_copy < c.disk_read);
        assert!(c.readahead_per_page < c.disk_read);
    }

    #[test]
    fn without_inference_zeroes_only_inference() {
        let c = CostModel::default();
        let z = c.without_inference();
        assert_eq!(z.inference_latency, SimDuration::ZERO);
        assert_eq!(z.disk_read, c.disk_read);
        assert_eq!(z.io_workers, c.io_workers);
    }

    #[test]
    fn validate_rejects_inverted_tiers() {
        let mut c = CostModel::default();
        c.buffer_hit = SimDuration::from_secs(1);
        assert!(c.validate().is_err());

        let mut c = CostModel::default();
        c.os_cache_copy = c.disk_read + SimDuration::from_micros(1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_workers() {
        let mut c = CostModel::default();
        c.io_workers = 0;
        assert!(c.validate().is_err());
    }
}
