//! The simulated persistent store.
//!
//! A [`SimDisk`] is a collection of files, each an append-only vector of
//! fixed-size pages holding real bytes. The mini-RDBMS stores its heap files
//! and B+Tree node files here, exactly like Postgres stores each relation
//! and index in its own file. Timing is *not* modelled here — the buffer
//! manager combines disk contents with the [`crate::OsPageCache`] and
//! [`crate::CostModel`] to decide what each access costs.

use std::fmt;

/// Size of a disk page in bytes.
///
/// Postgres uses 8 KiB pages over ~12M pages at DSB SF100; we use 2 KiB pages
/// over tens of thousands of pages so the whole database (and the model output
/// layer sized by page count) fits a laptop. The ratio of tuples per page is
/// preserved by also shrinking tuple width in the workload generator.
pub const PAGE_SIZE: usize = 2048;

/// Identifier of a file on the simulated disk (one per relation / index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// A page address: file plus page number within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    pub file: FileId,
    pub page_no: u32,
}

impl PageId {
    pub fn new(file: FileId, page_no: u32) -> Self {
        PageId { file, page_no }
    }

    /// Pack this address into one `u64` (`file` in the high half, `page_no`
    /// in the low half) — the form trace events carry as an argument.
    pub fn trace_key(self) -> u64 {
        ((self.file.0 as u64) << 32) | self.page_no as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.page_no)
    }
}

/// One simulated file: an ordered sequence of pages.
#[derive(Debug, Default)]
struct SimFile {
    pages: Vec<[u8; PAGE_SIZE]>,
}

/// The simulated disk: all persistent bytes of the database.
#[derive(Debug, Default)]
pub struct SimDisk {
    files: Vec<SimFile>,
}

impl SimDisk {
    /// An empty disk with no files.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Create a new empty file and return its id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SimFile::default());
        id
    }

    /// Number of files on the disk.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Append a zeroed page to `file`, returning the new page's id.
    ///
    /// # Panics
    /// Panics if `file` does not exist — allocation against a missing file is
    /// a programming error in the storage layer, not a runtime condition.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let f = &mut self.files[file.0 as usize];
        let page_no = f.pages.len() as u32;
        f.pages.push([0u8; PAGE_SIZE]);
        PageId::new(file, page_no)
    }

    /// Number of pages currently allocated in `file`.
    pub fn file_len(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].pages.len() as u32
    }

    /// Total pages across all files.
    pub fn total_pages(&self) -> u64 {
        self.files.iter().map(|f| f.pages.len() as u64).sum()
    }

    /// Read-only view of a page's bytes.
    ///
    /// # Panics
    /// Panics on an out-of-range page id (storage-layer invariant violation).
    pub fn read(&self, pid: PageId) -> &[u8; PAGE_SIZE] {
        &self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Mutable view of a page's bytes.
    pub fn write(&mut self, pid: PageId) -> &mut [u8; PAGE_SIZE] {
        &mut self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Whether `pid` addresses an allocated page.
    pub fn contains(&self, pid: PageId) -> bool {
        (pid.file.0 as usize) < self.files.len()
            && (pid.page_no as usize) < self.files[pid.file.0 as usize].pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_allocate() {
        let mut d = SimDisk::new();
        let f = d.create_file();
        assert_eq!(d.file_len(f), 0);
        let p0 = d.allocate_page(f);
        let p1 = d.allocate_page(f);
        assert_eq!(p0.page_no, 0);
        assert_eq!(p1.page_no, 1);
        assert_eq!(d.file_len(f), 2);
        assert_eq!(d.total_pages(), 2);
    }

    #[test]
    fn pages_are_zeroed_and_independent() {
        let mut d = SimDisk::new();
        let f = d.create_file();
        let p0 = d.allocate_page(f);
        let p1 = d.allocate_page(f);
        d.write(p0)[0] = 0xAB;
        assert_eq!(d.read(p0)[0], 0xAB);
        assert_eq!(d.read(p1)[0], 0);
    }

    #[test]
    fn files_are_independent() {
        let mut d = SimDisk::new();
        let f0 = d.create_file();
        let f1 = d.create_file();
        let a = d.allocate_page(f0);
        let b = d.allocate_page(f1);
        d.write(a)[10] = 1;
        d.write(b)[10] = 2;
        assert_eq!(d.read(a)[10], 1);
        assert_eq!(d.read(b)[10], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn contains_bounds() {
        let mut d = SimDisk::new();
        let f = d.create_file();
        let p = d.allocate_page(f);
        assert!(d.contains(p));
        assert!(!d.contains(PageId::new(f, 99)));
        assert!(!d.contains(PageId::new(FileId(9), 0)));
    }

    #[test]
    fn page_id_display() {
        let pid = PageId::new(FileId(3), 17);
        assert_eq!(pid.to_string(), "file#3:17");
    }

    #[test]
    fn page_id_ordering_is_file_then_offset() {
        let a = PageId::new(FileId(0), 100);
        let b = PageId::new(FileId(1), 0);
        let c = PageId::new(FileId(1), 5);
        assert!(a < b && b < c);
    }
}
